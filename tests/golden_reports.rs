//! Golden-report lock-in for the full comparison pipeline.
//!
//! Three fixed-seed checkpoint pairs run through the engine on a
//! simulated Lustre timeline with modeled compute, and the entire
//! [`CompareReport`] — stage breakdown, phase timers, I/O counters,
//! localized differences — is serialized to JSON and compared
//! byte-for-byte against checked-in goldens under `tests/goldens/`.
//!
//! Everything in the report is deterministic under simulation: phase
//! times come from the roofline models and the virtual clock (never
//! the wall), stage-2 slices arrive in submission order, and durations
//! serialize as integer `{secs, nanos}`. Any observable change to the
//! engine — a different BFS visit count, an extra read, a shifted
//! stage attribution — shows up as a golden diff.
//!
//! To regenerate after an *intentional* change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_reports
//! git diff tests/goldens/   # review before committing
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reprocmp::core::{CheckpointSource, CompareEngine, EngineConfig};
use reprocmp::device::Device;
use reprocmp::io::{CostModel, SimClock, Timeline};
use std::path::PathBuf;

/// One golden scenario: a seed plus the workload shape it drives.
struct Scenario {
    name: &'static str,
    seed: u64,
    n_values: usize,
    perturb_prob: f64,
}

const SCENARIOS: [Scenario; 3] = [
    Scenario {
        name: "seed1_sparse",
        seed: 1,
        n_values: 64 << 10,
        perturb_prob: 0.002,
    },
    Scenario {
        name: "seed2_moderate",
        seed: 2,
        n_values: 64 << 10,
        perturb_prob: 0.01,
    },
    Scenario {
        name: "seed3_identical",
        seed: 3,
        n_values: 32 << 10,
        perturb_prob: 0.0,
    },
];

/// Deterministic divergent pair. Uses only the vendored RNG (no
/// transcendental functions whose libm results could vary by host).
fn generate(sc: &Scenario) -> (Vec<f32>, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(sc.seed);
    let mut run1 = Vec::with_capacity(sc.n_values);
    for _ in 0..sc.n_values {
        run1.push(rng.gen_range(-2.0f32..2.0));
    }
    let mut run2 = run1.clone();
    if sc.perturb_prob > 0.0 {
        // Fixed magnitude tiers straddling the 1e-5 bound: two above
        // (real differences) and two below (hash-level noise only).
        const TIERS: [f64; 4] = [1e-3, 1e-4, 1e-6, 1e-7];
        for v in run2.iter_mut() {
            if rng.gen_bool(sc.perturb_prob) {
                let u: f64 = rng.gen();
                let mag = TIERS[((u * 4.0) as usize).min(3)];
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                *v += (mag * sign) as f32;
            }
        }
    }
    (run1, run2)
}

fn report_json(sc: &Scenario) -> String {
    let (run1, run2) = generate(sc);
    let engine = CompareEngine::new(EngineConfig {
        chunk_bytes: 4096,
        error_bound: 1e-5,
        device: Device::sim_cpu_core(),
        max_recorded_diffs: 8,
        ..EngineConfig::default()
    });
    let clock = SimClock::new();
    let model = CostModel::lustre_pfs();
    let a = CheckpointSource::in_memory_with_model(&run1, &engine, model, Some(clock.clone()))
        .expect("source 1");
    let b = CheckpointSource::in_memory_with_model(&run2, &engine, model, Some(clock.clone()))
        .expect("source 2");
    let report = engine
        .compare_with_timeline(&a, &b, &Timeline::sim(clock))
        .expect("compare");
    let mut json = serde_json::to_string_pretty(&report).expect("serialize");
    json.push('\n');
    json
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{name}.json"))
}

fn check_scenario(sc: &Scenario) {
    let actual = report_json(sc);
    let path = golden_path(sc.name);
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("goldens dir")).expect("mkdir");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    if actual != expected {
        // Point at the first diverging line so the failure is
        // actionable without a JSON diff tool.
        let diverged = actual
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (a, e))| a != e);
        match diverged {
            Some((line, (a, e))) => panic!(
                "golden mismatch for `{}` at line {}:\n  actual:   {a}\n  expected: {e}\n\
                 (UPDATE_GOLDEN=1 regenerates after an intentional change)",
                sc.name,
                line + 1
            ),
            None => panic!(
                "golden mismatch for `{}`: lengths differ ({} vs {} bytes)",
                sc.name,
                actual.len(),
                expected.len()
            ),
        }
    }
}

#[test]
fn golden_seed1_sparse() {
    check_scenario(&SCENARIOS[0]);
}

#[test]
fn golden_seed2_moderate() {
    check_scenario(&SCENARIOS[1]);
}

#[test]
fn golden_seed3_identical() {
    check_scenario(&SCENARIOS[2]);
}

// ---------------------------------------------------------------------
// Legacy-schema compatibility
// ---------------------------------------------------------------------

/// A minimal JSON value for schema comparisons. Numbers keep their raw
/// lexemes so comparisons are exact (no float round-trips).
#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// A tiny recursive-descent JSON parser — the vendored `serde_json`
/// stand-in only serializes, so reading the checked-in fixtures back
/// needs its own parser. Handles exactly the subset our reports emit.
fn parse_json(text: &str) -> Json {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }
        fn expect(&mut self, c: u8) {
            self.ws();
            assert_eq!(
                self.b[self.i], c,
                "expected {} at byte {}",
                c as char, self.i
            );
            self.i += 1;
        }
        fn string(&mut self) -> String {
            self.expect(b'"');
            let mut out = String::new();
            loop {
                let c = self.b[self.i];
                self.i += 1;
                match c {
                    b'"' => return out,
                    b'\\' => {
                        let e = self.b[self.i];
                        self.i += 1;
                        out.push(match e {
                            b'n' => '\n',
                            b't' => '\t',
                            other => other as char,
                        });
                    }
                    other => out.push(other as char),
                }
            }
        }
        fn value(&mut self) -> Json {
            self.ws();
            match self.b[self.i] {
                b'{' => {
                    self.i += 1;
                    let mut fields = Vec::new();
                    self.ws();
                    if self.b[self.i] == b'}' {
                        self.i += 1;
                        return Json::Obj(fields);
                    }
                    loop {
                        let key = self.string();
                        self.expect(b':');
                        fields.push((key, self.value()));
                        self.ws();
                        match self.b[self.i] {
                            b',' => self.i += 1,
                            b'}' => {
                                self.i += 1;
                                return Json::Obj(fields);
                            }
                            other => panic!("bad object separator {}", other as char),
                        }
                        self.ws();
                    }
                }
                b'[' => {
                    self.i += 1;
                    let mut items = Vec::new();
                    self.ws();
                    if self.b[self.i] == b']' {
                        self.i += 1;
                        return Json::Arr(items);
                    }
                    loop {
                        items.push(self.value());
                        self.ws();
                        match self.b[self.i] {
                            b',' => self.i += 1,
                            b']' => {
                                self.i += 1;
                                return Json::Arr(items);
                            }
                            other => panic!("bad array separator {}", other as char),
                        }
                    }
                }
                b'"' => Json::Str(self.string()),
                b't' => {
                    self.i += 4;
                    Json::Bool(true)
                }
                b'f' => {
                    self.i += 5;
                    Json::Bool(false)
                }
                b'n' => {
                    self.i += 4;
                    Json::Null
                }
                _ => {
                    let start = self.i;
                    while self.i < self.b.len()
                        && matches!(
                            self.b[self.i],
                            b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
                        )
                    {
                        self.i += 1;
                    }
                    Json::Num(String::from_utf8(self.b[start..self.i].to_vec()).unwrap())
                }
            }
        }
    }
    let mut p = P {
        b: text.as_bytes(),
        i: 0,
    };
    let v = p.value();
    p.ws();
    assert_eq!(p.i, text.len(), "trailing garbage after JSON value");
    v
}

/// Recursive *additive* schema comparison: every field the legacy
/// value has must exist in the current value with an additively-equal
/// value (objects may gain fields at any depth — e.g. `stages` gained
/// `store_read` with the flight recorder — but may never lose or
/// change one).
fn assert_additive(legacy: &Json, current: &Json, path: &str) {
    match (legacy, current) {
        (Json::Obj(old), Json::Obj(new)) => {
            for (key, old_value) in old {
                let (_, new_value) = new
                    .iter()
                    .find(|(k, _)| k == key)
                    .unwrap_or_else(|| panic!("new schema dropped `{path}.{key}`"));
                assert_additive(old_value, new_value, &format!("{path}.{key}"));
            }
        }
        _ => assert_eq!(current, legacy, "value of `{path}` changed"),
    }
}

/// Reports written before the batch scheduler existed (no `cache`
/// field) must stay readable, and the new schema must be *strictly
/// additive*: every field an old consumer reads is still present with
/// the identical value, and the only new field is the cache ledger.
#[test]
fn pre_cache_reports_remain_readable_and_schema_is_additive() {
    let legacy_text =
        std::fs::read_to_string(golden_path("legacy_pre_cache")).expect("legacy fixture");
    let Json::Obj(legacy) = parse_json(&legacy_text) else {
        panic!("legacy fixture is not an object")
    };
    let legacy_keys: Vec<&str> = legacy.iter().map(|(k, _)| k.as_str()).collect();
    for key in [
        "stats",
        "differences",
        "breakdown",
        "stages",
        "io",
        "unverified",
    ] {
        assert!(legacy_keys.contains(&key), "legacy report lost `{key}`");
    }
    assert!(
        !legacy_keys.contains(&"cache"),
        "the legacy fixture must predate the cache ledger"
    );

    // The regenerated golden for the same scenario: identical on every
    // field the old schema had, plus exactly the `cache` object.
    let current_text =
        std::fs::read_to_string(golden_path("seed2_moderate")).expect("current golden");
    let Json::Obj(current) = parse_json(&current_text) else {
        panic!("current golden is not an object")
    };
    for (key, legacy_value) in &legacy {
        let (_, current_value) = current
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("new schema dropped `{key}`"));
        assert_additive(legacy_value, current_value, key);
    }
    let added: Vec<&str> = current
        .iter()
        .map(|(k, _)| k.as_str())
        .filter(|k| !legacy_keys.contains(k))
        .collect();
    assert_eq!(
        added,
        vec!["cache", "store", "capture", "chain"],
        "additions beyond the cache/store/capture/chain ledgers"
    );
    // A plain pairwise in-memory report carries all-zero ledgers.
    for block in ["cache", "store", "capture", "chain"] {
        let (_, value) = current.iter().find(|(k, _)| k == block).unwrap();
        let Json::Obj(fields) = value else {
            panic!("{block} is not an object")
        };
        for (name, value) in fields {
            assert_eq!(value, &Json::Num("0".into()), "{block}.{name} nonzero");
        }
    }
}

/// Reports written before the persistent capture store existed (no
/// `store` field, but already carrying the `cache` ledger) must stay
/// readable, and the only schema addition since is the store's read
/// accounting block.
#[test]
fn pre_store_reports_remain_readable_and_schema_is_additive() {
    let legacy_text =
        std::fs::read_to_string(golden_path("legacy_pre_store")).expect("legacy fixture");
    let Json::Obj(legacy) = parse_json(&legacy_text) else {
        panic!("legacy fixture is not an object")
    };
    let legacy_keys: Vec<&str> = legacy.iter().map(|(k, _)| k.as_str()).collect();
    assert!(
        legacy_keys.contains(&"cache"),
        "the pre-store fixture postdates the cache ledger"
    );
    assert!(
        !legacy_keys.contains(&"store"),
        "the pre-store fixture must predate the store ledger"
    );

    let current_text =
        std::fs::read_to_string(golden_path("seed2_moderate")).expect("current golden");
    let Json::Obj(current) = parse_json(&current_text) else {
        panic!("current golden is not an object")
    };
    for (key, legacy_value) in &legacy {
        let (_, current_value) = current
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("new schema dropped `{key}`"));
        assert_additive(legacy_value, current_value, key);
    }
    let added: Vec<&str> = current
        .iter()
        .map(|(k, _)| k.as_str())
        .filter(|k| !legacy_keys.contains(k))
        .collect();
    assert_eq!(
        added,
        vec!["store", "capture", "chain"],
        "additions beyond the store/capture/chain ledgers"
    );
}

/// Reports written before the flight recorder existed (no
/// `stages.store_read` phase) must stay readable, and the only schema
/// change since is that one additive phase — instrumenting the engine
/// must not have perturbed a single simulated value anywhere else.
#[test]
fn pre_flightrec_reports_remain_readable_and_schema_is_additive() {
    let legacy_text =
        std::fs::read_to_string(golden_path("legacy_pre_flightrec")).expect("legacy fixture");
    let Json::Obj(legacy) = parse_json(&legacy_text) else {
        panic!("legacy fixture is not an object")
    };
    let legacy_keys: Vec<&str> = legacy.iter().map(|(k, _)| k.as_str()).collect();
    assert!(
        legacy_keys.contains(&"store"),
        "the pre-flight-recorder fixture postdates the store ledger"
    );
    let stages_of = |obj: &[(String, Json)]| -> Vec<String> {
        let Some((_, Json::Obj(stages))) = obj.iter().find(|(k, _)| k == "stages") else {
            panic!("report has no stages object")
        };
        stages.iter().map(|(k, _)| k.clone()).collect()
    };
    assert!(
        !stages_of(&legacy).contains(&"store_read".to_owned()),
        "the fixture must predate the store_read phase"
    );

    let current_text =
        std::fs::read_to_string(golden_path("seed2_moderate")).expect("current golden");
    let Json::Obj(current) = parse_json(&current_text) else {
        panic!("current golden is not an object")
    };
    for (key, legacy_value) in &legacy {
        let (_, current_value) = current
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("new schema dropped `{key}`"));
        assert_additive(legacy_value, current_value, key);
    }
    // The only top-level additions since are the differential-capture
    // ledgers; the stage additions are the overlap/informational
    // phases, all-zero for an in-memory comparison.
    let added: Vec<&str> = current
        .iter()
        .map(|(k, _)| k.as_str())
        .filter(|k| !legacy_keys.contains(k))
        .collect();
    assert_eq!(
        added,
        vec!["capture", "chain"],
        "unexpected top-level additions"
    );
    let new_stages: Vec<String> = stages_of(&current)
        .into_iter()
        .filter(|k| !stages_of(&legacy).contains(k))
        .collect();
    assert_eq!(
        new_stages,
        vec!["store_read", "delta_capture"],
        "stage additions"
    );
    let Some((_, Json::Obj(stages))) = current.iter().find(|(k, _)| k == "stages") else {
        unreachable!()
    };
    for phase in ["store_read", "delta_capture"] {
        let (_, cost) = stages.iter().find(|(k, _)| k == phase).unwrap();
        let flat = format!("{cost:?}");
        assert!(
            !flat.contains(|c: char| c.is_ascii_digit() && c != '0'),
            "in-memory comparison charged the {phase} phase: {flat}"
        );
    }
}

/// Reports written before differential capture existed (no `capture` /
/// `chain` blocks, no `stages.delta_capture` phase) must stay
/// readable, and the only schema changes since are those additive
/// blocks — the delta-chain plumbing must not have perturbed a single
/// simulated value anywhere else.
#[test]
fn pre_delta_reports_remain_readable_and_schema_is_additive() {
    let legacy_text =
        std::fs::read_to_string(golden_path("legacy_pre_delta")).expect("legacy fixture");
    let Json::Obj(legacy) = parse_json(&legacy_text) else {
        panic!("legacy fixture is not an object")
    };
    let legacy_keys: Vec<&str> = legacy.iter().map(|(k, _)| k.as_str()).collect();
    assert!(
        legacy_keys.contains(&"store"),
        "the pre-delta fixture postdates the store ledger"
    );
    assert!(
        !legacy_keys.contains(&"capture") && !legacy_keys.contains(&"chain"),
        "the fixture must predate the differential-capture blocks"
    );
    let stages_of = |obj: &[(String, Json)]| -> Vec<String> {
        let Some((_, Json::Obj(stages))) = obj.iter().find(|(k, _)| k == "stages") else {
            panic!("report has no stages object")
        };
        stages.iter().map(|(k, _)| k.clone()).collect()
    };
    assert!(
        stages_of(&legacy).contains(&"store_read".to_owned())
            && !stages_of(&legacy).contains(&"delta_capture".to_owned()),
        "the fixture must postdate store_read and predate delta_capture"
    );

    let current_text =
        std::fs::read_to_string(golden_path("seed2_moderate")).expect("current golden");
    let Json::Obj(current) = parse_json(&current_text) else {
        panic!("current golden is not an object")
    };
    for (key, legacy_value) in &legacy {
        let (_, current_value) = current
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("new schema dropped `{key}`"));
        assert_additive(legacy_value, current_value, key);
    }
    let added: Vec<&str> = current
        .iter()
        .map(|(k, _)| k.as_str())
        .filter(|k| !legacy_keys.contains(k))
        .collect();
    assert_eq!(
        added,
        vec!["capture", "chain"],
        "additions beyond the capture/chain blocks"
    );
    let new_stages: Vec<String> = stages_of(&current)
        .into_iter()
        .filter(|k| !stages_of(&legacy).contains(k))
        .collect();
    assert_eq!(new_stages, vec!["delta_capture"], "stage additions");
    // Neither side of an in-memory comparison is a store-backed delta:
    // every added number is zero.
    for block in ["capture", "chain"] {
        let (_, value) = current.iter().find(|(k, _)| k == block).unwrap();
        let Json::Obj(fields) = value else {
            panic!("{block} is not an object")
        };
        for (name, value) in fields {
            assert_eq!(value, &Json::Num("0".into()), "{block}.{name} nonzero");
        }
    }
}

/// The golden serialization is itself reproducible: two fresh
/// end-to-end runs of the same scenario produce byte-identical JSON
/// (this is what makes the checked-in files meaningful).
#[test]
fn report_json_is_deterministic_across_runs() {
    let one = report_json(&SCENARIOS[1]);
    let two = report_json(&SCENARIOS[1]);
    assert_eq!(one, two);
    // And the goldens really exercise the observability surface.
    assert!(one.contains("\"stages\""), "stage breakdown missing");
    assert!(one.contains("\"quantize\""));
    assert!(one.contains("\"stage2_stream\""));
    assert!(one.contains("\"io\""), "I/O counters missing");
}

/// Performance baselines written before the telemetry plane existed
/// (histogram entries without `sum`/`buckets`, no top-level `gauges`)
/// must stay readable, and re-serializing one under the new schema
/// must be *strictly additive*: exactly those fields appear, every
/// pre-existing field keeps its value, and `perf-diff` between the
/// legacy file and its re-serialization passes at a zero budget.
#[test]
fn pre_telemetry_profiles_remain_readable_and_schema_is_additive() {
    let legacy_text =
        std::fs::read_to_string(golden_path("legacy_pre_telemetry")).expect("legacy fixture");
    let parsed = reprocmp::obs::ProfileBaseline::parse(&legacy_text).expect("legacy parses");
    assert!(
        !parsed.histograms.is_empty(),
        "fixture must exercise histograms"
    );
    for h in &parsed.histograms {
        assert_eq!(h.sum, 0, "pre-telemetry files default sum to zero");
        assert!(h.buckets.is_empty(), "pre-telemetry files have no buckets");
    }
    assert!(
        parsed.gauges.is_empty(),
        "pre-telemetry files have no gauges"
    );

    // Re-serialize under today's schema and compare structurally.
    let current_text = parsed.to_json();
    let Json::Obj(legacy) = parse_json(&legacy_text) else {
        panic!("legacy fixture is not an object")
    };
    let Json::Obj(current) = parse_json(&current_text) else {
        panic!("re-serialized baseline is not an object")
    };
    // Top level: everything kept, exactly `gauges` added.
    for (key, legacy_value) in &legacy {
        if key == "histograms" {
            continue; // compared element-wise below
        }
        let (_, current_value) = current
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("new schema dropped `{key}`"));
        assert_additive(legacy_value, current_value, key);
    }
    let added: Vec<&str> = current
        .iter()
        .map(|(k, _)| k.as_str())
        .filter(|k| !legacy.iter().any(|(lk, _)| lk == k))
        .collect();
    assert_eq!(added, vec!["gauges"], "unexpected top-level additions");
    // Histogram entries: everything kept, exactly sum + buckets added.
    fn entries(obj: &[(String, Json)]) -> &[Json] {
        match obj.iter().find(|(k, _)| k == "histograms") {
            Some((_, Json::Arr(items))) => items,
            _ => panic!("no histograms array"),
        }
    }
    for (old_entry, new_entry) in entries(&legacy).iter().zip(entries(&current).iter()) {
        let (Json::Obj(old), Json::Obj(new)) = (old_entry, new_entry) else {
            panic!("histogram entries must be objects")
        };
        for (key, old_value) in old {
            let (_, new_value) = new
                .iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("histogram entry dropped `{key}`"));
            assert_additive(old_value, new_value, &format!("histograms.{key}"));
        }
        let added: Vec<&str> = new
            .iter()
            .map(|(k, _)| k.as_str())
            .filter(|k| !old.iter().any(|(ok, _)| ok == k))
            .collect();
        assert_eq!(added, vec!["sum", "buckets"], "histogram entry additions");
    }
    // And the regression gate sees no drift between the eras.
    let reparsed = reprocmp::obs::ProfileBaseline::parse(&current_text).expect("round trip");
    let diff = reprocmp::obs::diff_profiles(&parsed, &reparsed, 0.0);
    assert!(diff.passed(), "{}", diff.render());
}
