//! Multi-rank integration: checkpoint-pair comparisons distributed
//! over the simulated cluster, the execution shape of the paper's
//! strong-scaling study.

use reprocmp::cluster::{Cluster, ReduceOrder};
use reprocmp::core::{CheckpointSource, CompareEngine, EngineConfig};
use reprocmp::io::{CostModel, Timeline};

/// Synthetic pair generator: run 2 perturbs every `stride`-th value.
fn pair(len: usize, stride: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    let a: Vec<f32> = (0..len)
        .map(|i| ((i as u64).wrapping_mul(seed + 7919) % 10_000) as f32 * 1e-3)
        .collect();
    let mut b = a.clone();
    for i in (0..len).step_by(stride) {
        b[i] += 0.01;
    }
    (a, b)
}

#[test]
fn ranks_compare_their_own_pairs_and_agree_on_totals() {
    let cluster = Cluster::new(2, 4); // 8 ranks
    let pairs_per_rank = 2;

    let results = cluster.run(|ctx| {
        let engine = CompareEngine::new(EngineConfig {
            chunk_bytes: 256,
            error_bound: 1e-5,
            ..EngineConfig::default()
        });
        let mut local_diffs = 0u64;
        for p in 0..pairs_per_rank {
            let seed = (ctx.rank() * pairs_per_rank + p) as u64;
            let (v1, v2) = pair(4_096, 512, seed);
            let a = CheckpointSource::in_memory(&v1, &engine).unwrap();
            let b = CheckpointSource::in_memory(&v2, &engine).unwrap();
            let report = engine.compare(&a, &b).unwrap();
            // stride 512 over 4096 values = 8 diffs per pair.
            assert_eq!(report.stats.diff_count, 8);
            local_diffs += report.stats.diff_count;
        }
        ctx.allreduce_sum_f64(local_diffs as f64) as u64
    });

    // Every rank agrees on the global total: 8 ranks × 2 pairs × 8.
    assert!(results.iter().all(|&t| t == 128));
}

#[test]
fn per_node_clocks_isolate_storage_contention() {
    // Ranks on the same node share a PFS clock; ranks on different
    // nodes do not. Each local rank 0 does the I/O-heavy comparison.
    let cluster = Cluster::new(2, 2);
    let results = cluster.run(|ctx| {
        let engine = CompareEngine::new(EngineConfig {
            chunk_bytes: 1024,
            error_bound: 1e-5,
            ..EngineConfig::default()
        });
        let clock = ctx.node_clock();
        if ctx.local_rank() == 0 {
            let (v1, v2) = pair(1 << 15, 64, ctx.node() as u64);
            let a = CheckpointSource::in_memory_with_model(
                &v1,
                &engine,
                CostModel::lustre_pfs(),
                Some(clock.clone()),
            )
            .unwrap();
            let b = CheckpointSource::in_memory_with_model(
                &v2,
                &engine,
                CostModel::lustre_pfs(),
                Some(clock.clone()),
            )
            .unwrap();
            engine
                .compare_with_timeline(&a, &b, &Timeline::sim(clock.clone()))
                .unwrap();
        }
        ctx.barrier();
        clock.now()
    });
    // Both ranks of a node observe the same elapsed time; it is > 0
    // because their node's rank 0 did charged I/O. Sort before
    // pairing: the assertion is "the four readings form two equal
    // pairs", not a claim about which node's workload ran longer, so
    // it must not depend on how results are ordered across nodes.
    let mut sorted = results.clone();
    sorted.sort_unstable();
    assert_eq!(sorted[0], sorted[1], "a node's ranks disagree: {results:?}");
    assert_eq!(sorted[2], sorted[3], "a node's ranks disagree: {results:?}");
    assert!(sorted[0] > std::time::Duration::ZERO);
}

#[test]
fn reduction_order_nondeterminism_is_visible_to_the_comparator() {
    // A cluster computes an f32 observable via allreduce under two
    // different reduction orders; the comparator must classify the
    // outcome correctly against tight and loose bounds.
    let observable = |seed: u64| -> Vec<f32> {
        let cluster = Cluster::new(4, 4);
        let order = ReduceOrder::Shuffled { seed };
        let mut all = cluster.run(move |ctx| {
            // Mixed-magnitude contributions, summed 16-wide, once per
            // "iteration".
            (0..64)
                .map(|it| {
                    let c = ((ctx.rank() as u64 * 2654435761 + it) % 997) as f32 * 1e-4 + 1.0;
                    ctx.allreduce_sum_f32(c, order)
                })
                .collect::<Vec<f32>>()
        });
        all.swap_remove(0) // every rank got identical results; take rank 0's
    };

    let run1 = observable(1);
    let run2 = observable(2);

    let engine_tight = CompareEngine::new(EngineConfig {
        chunk_bytes: 64,
        error_bound: 1e-9,
        ..EngineConfig::default()
    });
    let a = CheckpointSource::in_memory(&run1, &engine_tight).unwrap();
    let b = CheckpointSource::in_memory(&run2, &engine_tight).unwrap();
    let tight = engine_tight.compare(&a, &b).unwrap();

    let engine_loose = CompareEngine::new(EngineConfig {
        chunk_bytes: 64,
        error_bound: 1e-2,
        ..EngineConfig::default()
    });
    let a = CheckpointSource::in_memory(&run1, &engine_loose).unwrap();
    let b = CheckpointSource::in_memory(&run2, &engine_loose).unwrap();
    let loose = engine_loose.compare(&a, &b).unwrap();

    assert!(
        tight.stats.diff_count > 0,
        "shuffled 16-way f32 reductions should differ at 1e-9"
    );
    assert_eq!(loose.stats.diff_count, 0, "and agree at 1e-2");
}
