//! Golden lock-in for the `reprocmp-server` wire protocol.
//!
//! Every request and response verb has a checked-in fixture under
//! `tests/goldens/wire/` pinning its exact JSON encoding, the same way
//! `tests/goldens/legacy_pre_*.json` pin the report schema. Three
//! guarantees are enforced:
//!
//! 1. **Encodings are frozen** — today's encoder reproduces each
//!    fixture byte-for-byte (regenerate after an intentional change
//!    with `UPDATE_GOLDEN=1 cargo test --test wire_protocol` and
//!    review the diff);
//! 2. **Fixtures stay decodable** — every pinned frame decodes back to
//!    the exact message it encodes, so a peer built today can always
//!    read traffic from a peer built at this commit;
//! 3. **Evolution is additive** — the same fixtures *with unknown
//!    fields injected at every level* still decode to the identical
//!    message, so a future server can add fields without breaking this
//!    build (and the checked-in `future_hello_ok` fixture proves it
//!    against a hand-written frame from that imagined future).

use std::path::PathBuf;

use reprocmp::server::{JobState, ObjectRef, Request, Response, PROTOCOL_VERSION};
use serde::{Serialize, Value};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens/wire")
        .join(format!("{name}.json"))
}

/// Every request verb, one canonical instance each.
fn canonical_requests() -> Vec<(&'static str, Request)> {
    vec![
        (
            "req_hello",
            Request::Hello {
                client: "rank-0".into(),
                protocol: PROTOCOL_VERSION,
            },
        ),
        (
            "req_ingest",
            Request::Ingest {
                name: "hacc.rho".into(),
                version: 12,
                chunk_bytes: 4096,
                data: "deadbeef".into(),
            },
        ),
        (
            "req_compare",
            Request::Compare {
                left: ObjectRef {
                    name: "hacc.rho".into(),
                    version: 12,
                },
                right: ObjectRef {
                    name: "hacc.rho".into(),
                    version: 13,
                },
            },
        ),
        (
            "req_compare_many",
            Request::CompareMany {
                baseline: ObjectRef {
                    name: "baseline".into(),
                    version: 1,
                },
                runs: vec![
                    ObjectRef {
                        name: "run_a".into(),
                        version: 1,
                    },
                    ObjectRef {
                        name: "run_b".into(),
                        version: 1,
                    },
                ],
            },
        ),
        (
            "req_materialize",
            Request::Materialize {
                name: "hacc.rho".into(),
                version: 12,
            },
        ),
        (
            "req_status",
            Request::Status {
                job: 42,
                wait: true,
            },
        ),
        ("req_watch", Request::Watch { job: 42 }),
        ("req_metrics", Request::Metrics),
        (
            "req_subscribe_telemetry",
            Request::SubscribeTelemetry { max: 8 },
        ),
        ("req_shutdown", Request::Shutdown),
    ]
}

/// Every response verb, one canonical instance each.
fn canonical_responses() -> Vec<(&'static str, Response)> {
    vec![
        (
            "resp_hello_ok",
            Response::HelloOk {
                server: "reprocmp-server".into(),
                protocol: PROTOCOL_VERSION,
                queue_capacity: 64,
            },
        ),
        ("resp_accepted", Response::Accepted { job: 42 }),
        (
            "resp_rejected",
            Response::Rejected {
                reason: "queue full: 64/64 jobs in flight; retry later".into(),
            },
        ),
        (
            "resp_status",
            Response::Status {
                job: 42,
                state: JobState::Done,
                result: Some(Value::Object(vec![
                    ("chunk_refs".to_owned(), Value::UInt(16)),
                    ("bytes_logical".to_owned(), Value::UInt(65536)),
                ])),
                error: None,
            },
        ),
        (
            "resp_event",
            Response::Event {
                job: 42,
                seq: 7,
                ts_ns: 20000,
                lane: "run_a.uring.sq".into(),
                kind: "io_submit".into(),
            },
        ),
        (
            "resp_done",
            Response::Done {
                job: 42,
                state: JobState::Done,
                events_emitted: 25,
                events_written: 25,
                events_dropped: 0,
            },
        ),
        (
            "resp_error",
            Response::Error {
                message: "unknown job 404".into(),
            },
        ),
        (
            "resp_telemetry",
            Response::Telemetry {
                snapshot: Value::Object(vec![
                    ("schema".to_owned(), Value::UInt(1)),
                    ("seq".to_owned(), Value::UInt(12)),
                    ("ts_ns".to_owned(), Value::UInt(120_000_000)),
                ]),
            },
        ),
        (
            "resp_telemetry_end",
            Response::TelemetryEnd { snapshots: 12 },
        ),
    ]
}

fn pretty(msg: &impl Serialize) -> String {
    let mut text = serde_json::to_string_pretty(msg).expect("encode");
    text.push('\n');
    text
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("wire dir")).expect("mkdir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "wire golden `{name}` drifted (UPDATE_GOLDEN=1 regenerates after an intentional change)"
    );
}

#[test]
fn request_encodings_match_the_pinned_goldens() {
    for (name, req) in canonical_requests() {
        check_golden(name, &pretty(&req));
    }
}

#[test]
fn response_encodings_match_the_pinned_goldens() {
    for (name, resp) in canonical_responses() {
        check_golden(name, &pretty(&resp));
    }
}

#[test]
fn pinned_request_fixtures_decode_to_the_exact_message() {
    for (name, req) in canonical_requests() {
        let text = std::fs::read_to_string(golden_path(name))
            .unwrap_or_else(|e| panic!("golden {name}: {e} (UPDATE_GOLDEN=1 to create)"));
        let decoded = Request::decode(text.as_bytes())
            .unwrap_or_else(|e| panic!("golden {name} no longer decodes: {e}"));
        assert_eq!(decoded, req, "golden {name} decodes to a different message");
    }
}

#[test]
fn pinned_response_fixtures_decode_to_the_exact_message() {
    for (name, resp) in canonical_responses() {
        let text = std::fs::read_to_string(golden_path(name))
            .unwrap_or_else(|e| panic!("golden {name}: {e} (UPDATE_GOLDEN=1 to create)"));
        let decoded = Response::decode(text.as_bytes())
            .unwrap_or_else(|e| panic!("golden {name} no longer decodes: {e}"));
        assert_eq!(
            decoded, resp,
            "golden {name} decodes to a different message"
        );
    }
}

/// Injects an unknown field after every `{` in a JSON document —
/// simulating a future protocol revision that added fields at every
/// nesting level.
fn inject_unknown_fields(json: &str) -> String {
    let mut out = String::with_capacity(json.len() * 2);
    let mut in_string = false;
    let mut escaped = false;
    for c in json.chars() {
        out.push(c);
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => out.push_str(r#""added_in_v99":{"nested":[1,"x",null]},"#),
            _ => {}
        }
    }
    out
}

/// The additive-evolution guarantee, mirroring the `legacy_pre_*`
/// report tests from the other direction: frames from a *newer* peer
/// (every object carrying fields this build has never heard of) must
/// decode to exactly the message the known fields describe.
#[test]
fn unknown_fields_at_every_level_decode_identically() {
    for (name, req) in canonical_requests() {
        let text = std::fs::read_to_string(golden_path(name))
            .unwrap_or_else(|e| panic!("golden {name}: {e}"));
        let futuristic = inject_unknown_fields(&text);
        let decoded = Request::decode(futuristic.as_bytes())
            .unwrap_or_else(|e| panic!("{name} with unknown fields failed: {e}"));
        assert_eq!(decoded, req, "{name}: unknown fields changed the decode");
    }
    for (name, resp) in canonical_responses() {
        // Status and Telemetry carry free-form documents (`result`,
        // `snapshot`) whose own fields are opaque payload, not schema
        // — injecting there changes the message by definition.
        if name == "resp_status" || name == "resp_telemetry" {
            continue;
        }
        let text = std::fs::read_to_string(golden_path(name))
            .unwrap_or_else(|e| panic!("golden {name}: {e}"));
        let futuristic = inject_unknown_fields(&text);
        let decoded = Response::decode(futuristic.as_bytes())
            .unwrap_or_else(|e| panic!("{name} with unknown fields failed: {e}"));
        assert_eq!(decoded, resp, "{name}: unknown fields changed the decode");
    }
}

/// A hand-written frame "from the future": protocol 99, extra fields
/// everywhere. Checked in verbatim (never regenerated) so this build
/// is pinned forever to accepting it.
#[test]
fn future_hello_fixture_remains_acceptable() {
    let text = std::fs::read_to_string(golden_path("future_hello_ok"))
        .expect("the future_hello_ok fixture is checked in by hand");
    let decoded = Response::decode(text.as_bytes()).expect("future frame must decode");
    match decoded {
        Response::HelloOk {
            server,
            protocol,
            queue_capacity,
        } => {
            assert_eq!(server, "reprocmp-server/9.9");
            assert_eq!(protocol, 99, "future revisions advertise themselves");
            assert_eq!(queue_capacity, 4096);
        }
        other => panic!("future hello decoded as {other:?}"),
    }
}

/// The encoder side of determinism: encoding is a pure function of the
/// message (two encodes are byte-identical), which is what makes the
/// pinned fixtures meaningful.
#[test]
fn encoding_is_deterministic() {
    for (_, req) in canonical_requests() {
        assert_eq!(pretty(&req), pretty(&req));
    }
    for (_, resp) in canonical_responses() {
        assert_eq!(pretty(&resp), pretty(&resp));
    }
}
