//! End-to-end integration of the persistent capture store: HACC runs
//! captured through the VELOC client flush into content-addressed
//! packs, repeat runs of the same workload dedup to near-zero physical
//! growth with an exact byte ledger, and the comparison engine reads
//! checkpoints straight back out of the store with verdicts identical
//! to the in-memory path.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reprocmp::core::{CheckpointSource, CompareEngine, EngineConfig};
use reprocmp::hacc::{HaccConfig, Simulation, SlabDecomposition};
use reprocmp::store::ChunkStore;
use reprocmp::veloc::client::{Client, VelocConfig};

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "reprocmp-store-integration-{tag}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&root).ok();
    root
}

fn engine() -> CompareEngine {
    CompareEngine::new(EngineConfig {
        chunk_bytes: 512,
        error_bound: 1e-5,
        ..EngineConfig::default()
    })
}

/// Captures one deterministic mini-HACC run through the VELOC client
/// into `store`, checkpointing every `interval` steps.
fn capture_run(store: &Arc<ChunkStore>, base: &Path, run_name: &str, steps: u64) {
    let mut cfg = HaccConfig::small();
    cfg.particles = 512;
    let box_size = cfg.box_size;
    let mut sim = Simulation::new(cfg);
    let decomp = SlabDecomposition::new(1);
    let client = Client::new(
        VelocConfig {
            store_chunk_bytes: 512,
            ..VelocConfig::rooted_at(base)
        }
        .with_store(Arc::clone(store)),
    )
    .expect("client");
    for step in 1..=steps {
        sim.step();
        if step % 5 == 0 {
            let regions = decomp.rank_regions(sim.particles(), box_size, 0);
            let borrowed: Vec<(&str, &[f32])> =
                regions.iter().map(|(n, v)| (*n, v.as_slice())).collect();
            let name = format!("{run_name}.rank0");
            client
                .checkpoint(&name, step, &borrowed)
                .expect("checkpoint");
        }
    }
    client.wait_all().expect("flush");
}

/// N runs of the same (deterministic) workload must store strictly
/// fewer physical bytes than N x the raw capture volume, and the
/// logical = physical + deduped ledger must balance exactly.
#[test]
fn repeat_runs_dedup_with_an_exact_ledger() {
    let root = temp_root("dedup");
    let store_root = root.join("store");
    let store = Arc::new(ChunkStore::open(&store_root).expect("open store"));

    capture_run(&store, &root.join("veloc1"), "run1", 15);
    let after_first = store.stats();
    assert!(after_first.bytes_physical > 0, "first run stored nothing");

    // The same deterministic workload twice more, under new run names:
    // every chunk is content-identical, so physical growth stays zero.
    capture_run(&store, &root.join("veloc2"), "run2", 15);
    capture_run(&store, &root.join("veloc3"), "run3", 15);
    let stats = store.stats();

    assert_eq!(stats.objects, 9, "3 runs x 3 checkpoints");
    assert_eq!(
        stats.bytes_logical,
        3 * after_first.bytes_logical,
        "each run captures the same logical volume"
    );
    assert_eq!(
        stats.bytes_physical, after_first.bytes_physical,
        "repeat runs must not grow the packs"
    );
    assert!(
        stats.bytes_physical < stats.bytes_logical,
        "N runs must store strictly less than N x raw"
    );
    // The ledger is exact, not approximate.
    assert_eq!(
        stats.bytes_logical,
        stats.bytes_physical + stats.bytes_deduped,
        "logical = physical + deduped"
    );

    // Reopening from disk sees the same ledger (the counts are
    // reconstructed from packs + manifests, not carried in memory).
    drop(store);
    let reopened = ChunkStore::open(&store_root).expect("reopen");
    assert_eq!(reopened.stats(), stats);
    std::fs::remove_dir_all(&root).ok();
}

/// The golden scenario generator from `golden_reports.rs`: a fixed
/// seed drives a divergent pair with perturbations straddling the
/// 1e-5 bound.
fn golden_pair(seed: u64, n: usize, perturb_prob: f64) -> (Vec<f32>, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut run1 = Vec::with_capacity(n);
    for _ in 0..n {
        run1.push(rng.gen_range(-2.0f32..2.0));
    }
    let mut run2 = run1.clone();
    if perturb_prob > 0.0 {
        const TIERS: [f64; 4] = [1e-3, 1e-4, 1e-6, 1e-7];
        for v in run2.iter_mut() {
            if rng.gen_bool(perturb_prob) {
                let u: f64 = rng.gen();
                let mag = TIERS[((u * 4.0) as usize).min(3)];
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                *v += (mag * sign) as f32;
            }
        }
    }
    (run1, run2)
}

fn payload_bytes(values: &[f32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Store-backed comparisons must agree with the in-memory path on
/// every deterministic report field (verdicts, localized differences,
/// I/O counts); only the wall-clock stage timings and the additive
/// `store` read ledger may differ.
#[test]
fn store_backed_reports_match_in_memory_on_golden_seeds() {
    let root = temp_root("golden");
    let store = ChunkStore::open(&root).expect("open store");
    let e = engine();
    let chunk = e.config().chunk_bytes;

    for (seed, perturb) in [(1u64, 0.002), (2, 0.01), (3, 0.0)] {
        let (run1, run2) = golden_pair(seed, 16 << 10, perturb);
        let n1 = format!("seed{seed}.run1");
        let n2 = format!("seed{seed}.run2");
        store
            .ingest(&n1, 1, &[("payload", &payload_bytes(&run1))], chunk, &[])
            .expect("ingest run1");
        store
            .ingest(&n2, 1, &[("payload", &payload_bytes(&run2))], chunk, &[])
            .expect("ingest run2");

        let sa = CheckpointSource::from_store(&store, &n1, 1, &e).expect("source a");
        let sb = CheckpointSource::from_store(&store, &n2, 1, &e).expect("source b");
        let stored = e.compare(&sa, &sb).expect("store-backed compare");

        let ma = CheckpointSource::in_memory(&run1, &e).expect("mem a");
        let mb = CheckpointSource::in_memory(&run2, &e).expect("mem b");
        let mem = e.compare(&ma, &mb).expect("in-memory compare");

        assert_eq!(stored.stats, mem.stats, "seed {seed}: verdict drifted");
        assert_eq!(
            stored.differences, mem.differences,
            "seed {seed}: localization drifted"
        );
        assert_eq!(stored.unverified, mem.unverified, "seed {seed}");
        assert_eq!(stored.identical(), mem.identical(), "seed {seed}");
        // The store ledger is the only addition: live on the store
        // side, all-zero in memory.
        assert!(mem.store.is_zero(), "seed {seed}");
        if stored.stats.chunks_flagged > 0 {
            assert!(stored.store.bytes_read > 0, "seed {seed}: no store reads");
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

/// Scrub must catch a single flipped bit in a pack file.
#[test]
fn scrub_detects_injected_pack_corruption() {
    let root = temp_root("scrub");
    let store = ChunkStore::open(&root).expect("open store");
    let values: Vec<f32> = (0..4096).map(|i| i as f32 * 0.125).collect();
    store
        .ingest(
            "victim",
            1,
            &[("payload", &payload_bytes(&values))],
            512,
            &[],
        )
        .expect("ingest");
    assert!(store.scrub().expect("scrub").is_clean());

    let pack = std::fs::read_dir(root.join("packs"))
        .expect("packs dir")
        .map(|e| e.expect("entry").path())
        .find(|p| p.extension().is_some_and(|x| x == "pack"))
        .expect("a pack file");
    let mut bytes = std::fs::read(&pack).expect("read pack");
    let at = bytes.len() / 2;
    bytes[at] ^= 0x01;
    std::fs::write(&pack, &bytes).expect("write corrupted pack");

    let report = store.scrub().expect("scrub runs");
    assert_eq!(report.failures.len(), 1, "exactly one chunk is damaged");
    assert_ne!(report.failures[0].expected, report.failures[0].actual);
    std::fs::remove_dir_all(&root).ok();
}
