//! Failure injection through the full comparison stack: device faults
//! during metadata reads and stage-two streaming must surface as
//! errors — never hangs, never silently-partial reports.

use reprocmp::core::{CheckpointSource, CompareEngine, CoreError, Direct, EngineConfig};
use reprocmp::io::{FaultPlan, FaultyStorage};
use std::sync::Arc;

fn engine() -> CompareEngine {
    CompareEngine::new(EngineConfig {
        chunk_bytes: 256,
        error_bound: 1e-5,
        ..EngineConfig::default()
    })
}

fn wave(n: usize) -> Vec<f32> {
    (0..n).map(|i| (i as f32 * 0.01).sin()).collect()
}

/// A source whose payload storage injects faults per `plan`.
fn faulty_pair(
    e: &CompareEngine,
    n: usize,
    plan: FaultPlan,
) -> (CheckpointSource, CheckpointSource) {
    let data = wave(n);
    let mut data2 = data.clone();
    // Divergence so stage two actually reads payload data.
    for k in (0..n).step_by(97) {
        data2[k] += 1.0;
    }
    let a = CheckpointSource::in_memory(&data, e).unwrap();
    let mut b = CheckpointSource::in_memory(&data2, e).unwrap();
    b.data = Arc::new(FaultyStorage::new(Arc::clone(&b.data), plan));
    (a, b)
}

#[test]
fn stage_two_device_fault_surfaces_as_error() {
    let e = engine();
    let (a, b) = faulty_pair(&e, 10_000, FaultPlan::EveryNth { n: 7 });
    match e.compare(&a, &b) {
        Err(CoreError::Io(_)) => {}
        other => panic!("expected Io error, got {other:?}"),
    }
}

#[test]
fn bad_sector_in_flagged_region_is_detected() {
    let e = engine();
    // Bad sector overlapping a chunk that will be re-read (value 0 is
    // perturbed, so chunk 0 at bytes 0..256 is flagged).
    let (a, b) = faulty_pair(&e, 10_000, FaultPlan::Range { start: 0, end: 64 });
    assert!(matches!(e.compare(&a, &b), Err(CoreError::Io(_))));
}

#[test]
fn bad_sector_in_pruned_region_is_never_touched() {
    let e = engine();
    let data = wave(10_000);
    let mut data2 = data.clone();
    data2[0] += 1.0; // only chunk 0 flagged
    let a = CheckpointSource::in_memory(&data, &e).unwrap();
    let mut b = CheckpointSource::in_memory(&data2, &e).unwrap();
    // Poison a region far from chunk 0 — pruning means it is never read.
    let faulty = Arc::new(FaultyStorage::new(
        Arc::clone(&b.data),
        FaultPlan::Range {
            start: 20_000,
            end: 30_000,
        },
    ));
    b.data = faulty.clone();
    let report = e.compare(&a, &b).unwrap();
    assert_eq!(report.stats.diff_count, 1);
    assert_eq!(faulty.injected_faults(), 0, "pruned data must not be read");
}

#[test]
fn metadata_fault_surfaces_as_error() {
    let e = engine();
    let data = wave(5_000);
    let a = CheckpointSource::in_memory(&data, &e).unwrap();
    let mut b = CheckpointSource::in_memory(&data, &e).unwrap();
    b.metadata = Arc::new(FaultyStorage::new(
        Arc::clone(&b.metadata),
        FaultPlan::EveryNth { n: 1 },
    ));
    assert!(matches!(e.compare(&a, &b), Err(CoreError::Io(_))));
}

#[test]
fn direct_baseline_also_fails_cleanly() {
    let e = engine();
    // Direct reads the whole payload as one large op, so fail it
    // outright rather than by byte budget.
    let (a, b) = faulty_pair(&e, 10_000, FaultPlan::EveryNth { n: 1 });
    let direct = Direct::new(1e-5).unwrap();
    assert!(matches!(direct.compare(&a, &b), Err(CoreError::Io(_))));
}

#[test]
fn engine_is_reusable_after_a_failed_comparison() {
    let e = engine();
    let (a, b) = faulty_pair(&e, 10_000, FaultPlan::EveryNth { n: 3 });
    assert!(e.compare(&a, &b).is_err());

    // Same engine, healthy sources: works.
    let data = wave(10_000);
    let c = CheckpointSource::in_memory(&data, &e).unwrap();
    let d = CheckpointSource::in_memory(&data, &e).unwrap();
    assert!(e.compare(&c, &d).unwrap().identical());
}
