//! Failure injection through the full comparison stack: device faults
//! during metadata reads and stage-two streaming must surface as
//! errors — never hangs, never silently-partial reports. With a retry
//! policy, transient faults heal invisibly; under the Quarantine
//! policy, permanent faults degrade to an exact partial report.

use reprocmp::core::{
    CheckpointSource, ChunkRange, CompareEngine, CoreError, Direct, EngineConfig, FailurePolicy,
};
use reprocmp::io::{FaultPlan, FaultyStorage, RetryPolicy};
use std::sync::Arc;

fn engine() -> CompareEngine {
    CompareEngine::new(EngineConfig {
        chunk_bytes: 256,
        error_bound: 1e-5,
        ..EngineConfig::default()
    })
}

fn wave(n: usize) -> Vec<f32> {
    (0..n).map(|i| (i as f32 * 0.01).sin()).collect()
}

/// A source whose payload storage injects faults per `plan`.
fn faulty_pair(
    e: &CompareEngine,
    n: usize,
    plan: FaultPlan,
) -> (CheckpointSource, CheckpointSource) {
    let data = wave(n);
    let mut data2 = data.clone();
    // Divergence so stage two actually reads payload data.
    for k in (0..n).step_by(97) {
        data2[k] += 1.0;
    }
    let a = CheckpointSource::in_memory(&data, e).unwrap();
    let mut b = CheckpointSource::in_memory(&data2, e).unwrap();
    b.data = Arc::new(FaultyStorage::new(Arc::clone(&b.data), plan));
    (a, b)
}

#[test]
fn stage_two_device_fault_surfaces_as_error() {
    let e = engine();
    let (a, b) = faulty_pair(&e, 10_000, FaultPlan::EveryNth { n: 7 });
    match e.compare(&a, &b) {
        Err(CoreError::Io(_)) => {}
        other => panic!("expected Io error, got {other:?}"),
    }
}

#[test]
fn bad_sector_in_flagged_region_is_detected() {
    let e = engine();
    // Bad sector overlapping a chunk that will be re-read (value 0 is
    // perturbed, so chunk 0 at bytes 0..256 is flagged).
    let (a, b) = faulty_pair(&e, 10_000, FaultPlan::Range { start: 0, end: 64 });
    assert!(matches!(e.compare(&a, &b), Err(CoreError::Io(_))));
}

#[test]
fn bad_sector_in_pruned_region_is_never_touched() {
    let e = engine();
    let data = wave(10_000);
    let mut data2 = data.clone();
    data2[0] += 1.0; // only chunk 0 flagged
    let a = CheckpointSource::in_memory(&data, &e).unwrap();
    let mut b = CheckpointSource::in_memory(&data2, &e).unwrap();
    // Poison a region far from chunk 0 — pruning means it is never read.
    let faulty = Arc::new(FaultyStorage::new(
        Arc::clone(&b.data),
        FaultPlan::Range {
            start: 20_000,
            end: 30_000,
        },
    ));
    b.data = faulty.clone();
    let report = e.compare(&a, &b).unwrap();
    assert_eq!(report.stats.diff_count, 1);
    assert_eq!(faulty.injected_faults(), 0, "pruned data must not be read");
}

#[test]
fn metadata_fault_surfaces_as_error() {
    let e = engine();
    let data = wave(5_000);
    let a = CheckpointSource::in_memory(&data, &e).unwrap();
    let mut b = CheckpointSource::in_memory(&data, &e).unwrap();
    b.metadata = Arc::new(FaultyStorage::new(
        Arc::clone(&b.metadata),
        FaultPlan::EveryNth { n: 1 },
    ));
    assert!(matches!(e.compare(&a, &b), Err(CoreError::Io(_))));
}

#[test]
fn direct_baseline_also_fails_cleanly() {
    let e = engine();
    // Direct reads the whole payload as one large op, so fail it
    // outright rather than by byte budget.
    let (a, b) = faulty_pair(&e, 10_000, FaultPlan::EveryNth { n: 1 });
    let direct = Direct::new(1e-5).unwrap();
    assert!(matches!(direct.compare(&a, &b), Err(CoreError::Io(_))));
}

#[test]
fn engine_is_reusable_after_a_failed_comparison() {
    let e = engine();
    let (a, b) = faulty_pair(&e, 10_000, FaultPlan::EveryNth { n: 3 });
    assert!(e.compare(&a, &b).is_err());

    // Same engine, healthy sources: works.
    let data = wave(10_000);
    let c = CheckpointSource::in_memory(&data, &e).unwrap();
    let d = CheckpointSource::in_memory(&data, &e).unwrap();
    assert!(e.compare(&c, &d).unwrap().identical());
}

fn engine_with(f: impl FnOnce(&mut EngineConfig)) -> CompareEngine {
    let mut cfg = EngineConfig {
        chunk_bytes: 256,
        error_bound: 1e-5,
        ..EngineConfig::default()
    };
    f(&mut cfg);
    CompareEngine::new(cfg)
}

/// Acceptance (a): a transient outage fully healed by retries has zero
/// impact on the report — even under the default Abort policy.
#[test]
fn transient_faults_healed_by_retry_leave_no_trace_in_the_report() {
    let e = engine_with(|c| c.io.retry = RetryPolicy::with_attempts(8));
    let data = wave(10_000);
    let mut data2 = data.clone();
    for k in (0..10_000).step_by(97) {
        data2[k] += 1.0;
    }
    let a = CheckpointSource::in_memory(&data, &e).unwrap();
    let mut b = CheckpointSource::in_memory(&data2, &e).unwrap();
    let faulty = Arc::new(FaultyStorage::new(
        Arc::clone(&b.data),
        FaultPlan::FirstN { n: 5 },
    ));
    b.data = faulty.clone();
    let report = e.compare(&a, &b).unwrap();

    // A fault-free twin of the same comparison.
    let plain = engine();
    let (pa, pb) = faulty_pair(&plain, 10_000, FaultPlan::None);
    let clean = plain.compare(&pa, &pb).unwrap();

    assert!(report.fully_verified());
    assert_eq!(report.stats.diff_count, clean.stats.diff_count);
    assert_eq!(report.stats.chunks_flagged, clean.stats.chunks_flagged);
    assert_eq!(
        report.stats.false_positive_chunks,
        clean.stats.false_positive_chunks
    );
    let got: Vec<u64> = report.differences.iter().map(|d| d.index).collect();
    let want: Vec<u64> = clean.differences.iter().map(|d| d.index).collect();
    assert_eq!(got, want);

    // The outage really happened, and the ledger shows the healing.
    assert_eq!(faulty.injected_faults(), 5);
    assert!(report.io.retried >= 5, "{:?}", report.io);
    assert_eq!(report.io.gave_up, 0);
}

/// Acceptance (b): a permanent fault under Quarantine yields a partial
/// report whose unverified ranges exactly cover the faulted chunks —
/// everything else matches the fault-free run.
#[test]
fn quarantine_partial_report_covers_exactly_the_faulted_chunks() {
    // Values 0 and 97 (the first two perturbations) live in chunks 0
    // and 1 (64 f32 per 256-byte chunk); poison exactly those chunks.
    let e = engine_with(|c| c.failure_policy = FailurePolicy::Quarantine);
    let (a, b) = faulty_pair(&e, 10_000, FaultPlan::Range { start: 0, end: 512 });
    let report = e.compare(&a, &b).unwrap();

    assert_eq!(report.unverified, vec![ChunkRange { first: 0, count: 2 }]);
    assert_eq!(report.unverified_chunks(), 2);
    assert_eq!(report.io.gave_up, 2, "{:?}", report.io);

    // Every difference outside the quarantined chunks is still found.
    let plain = engine();
    let (pa, pb) = faulty_pair(&plain, 10_000, FaultPlan::None);
    let clean = plain.compare(&pa, &pb).unwrap();
    let got: Vec<u64> = report.differences.iter().map(|d| d.index).collect();
    let want: Vec<u64> = clean
        .differences
        .iter()
        .map(|d| d.index)
        .filter(|&i| i >= 128) // chunks 0..2 hold values 0..128
        .collect();
    assert_eq!(got, want);
    assert_eq!(report.stats.diff_count, want.len() as u64);
}

/// Quarantine still aborts on global failures: unreadable metadata is
/// not a per-chunk problem.
#[test]
fn quarantine_does_not_mask_metadata_failures() {
    let e = engine_with(|c| c.failure_policy = FailurePolicy::Quarantine);
    let data = wave(5_000);
    let a = CheckpointSource::in_memory(&data, &e).unwrap();
    let mut b = CheckpointSource::in_memory(&data, &e).unwrap();
    b.metadata = Arc::new(FaultyStorage::new(
        Arc::clone(&b.metadata),
        FaultPlan::EveryNth { n: 1 },
    ));
    assert!(matches!(e.compare(&a, &b), Err(CoreError::Io(_))));
}

/// Acceptance (c): a client killed mid-flush recovers every local-only
/// checkpoint through `Client::recover` on restart.
#[test]
fn veloc_client_recovers_local_only_checkpoints_after_crash() {
    use reprocmp::veloc::client::{Client, VelocConfig};
    let base = std::env::temp_dir().join(format!("reprocmp-fault-veloc-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let config = VelocConfig::rooted_at(&base);
    {
        let client = Client::new(config.clone()).unwrap();
        let x: Vec<f32> = (0..256).map(|i| i as f32).collect();
        for v in [1u64, 2, 3] {
            client.checkpoint("sim", v, &[("x", &x)]).unwrap();
        }
        client.wait_all().unwrap();
    }
    // Crash simulation: v2/v3 never reached the PFS; v3's flush died
    // mid-copy leaving a torn temporary.
    let pfs = base.join("pfs");
    std::fs::remove_file(pfs.join("sim.v000002.ckpt")).unwrap();
    std::fs::remove_file(pfs.join("sim.v000003.ckpt")).unwrap();
    std::fs::write(pfs.join("sim.v000003.ckpt.tmp"), b"torn").unwrap();

    let client = Client::new(config).unwrap();
    let requeued = client.recover().unwrap();
    assert_eq!(requeued, vec![("sim".to_owned(), 2), ("sim".to_owned(), 3)]);
    client.wait_all().unwrap();
    assert_eq!(client.versions("sim").unwrap(), vec![1, 2, 3]);
    assert!(!pfs.join("sim.v000003.ckpt.tmp").exists());
    std::fs::remove_dir_all(&base).ok();
}

/// Satellite (d): one rank's storage faulted inside a cluster run —
/// the other ranks complete fully verified, and the faulted rank
/// quarantines instead of hanging or poisoning the collective result.
#[test]
fn cluster_fault_drill_quarantines_one_rank_without_stalling_the_rest() {
    use reprocmp::cluster::Cluster;
    let cluster = Cluster::new(1, 4);
    let reports = cluster.run(|ctx| {
        let e = engine_with(|c| c.failure_policy = FailurePolicy::Quarantine);
        let data = wave(10_000);
        let mut data2 = data.clone();
        for k in (0..10_000).step_by(97) {
            data2[k] += 1.0;
        }
        let a = CheckpointSource::in_memory(&data, &e).unwrap();
        let mut b = CheckpointSource::in_memory(&data2, &e).unwrap();
        if ctx.rank() == 2 {
            b.data = Arc::new(FaultyStorage::new(
                Arc::clone(&b.data),
                FaultPlan::Range { start: 0, end: 512 },
            ));
        }
        e.compare(&a, &b).unwrap()
    });
    assert_eq!(reports.len(), 4);
    for (rank, report) in reports.iter().enumerate() {
        if rank == 2 {
            assert!(!report.fully_verified(), "rank 2 must quarantine");
            assert_eq!(report.unverified, vec![ChunkRange { first: 0, count: 2 }]);
            assert!(
                report.stats.diff_count > 0,
                "diffs beyond the bad sector found"
            );
        } else {
            assert!(report.fully_verified(), "rank {rank} untouched");
            assert_eq!(report.unverified, vec![]);
        }
    }
    // All healthy ranks agree with each other.
    assert_eq!(reports[0].stats.diff_count, reports[1].stats.diff_count);
    assert!(reports[2].stats.diff_count < reports[0].stats.diff_count);
}
