//! Crash-point torture for the daemon lifecycle: power-fail the store
//! under a *serving* `reprocmp-server` at every filesystem mutation
//! boundary and prove the shutdown and restart contracts hold.
//!
//! The sweep mirrors `tests/crash_torture.rs`: a counting pass runs
//! the full daemon lifecycle (start → ingest traffic → read traffic →
//! graceful shutdown) over a [`CrashFs`] wrapping
//! [`CrashPlan::observe`] to number every store mutation, then each
//! crash point `k` × failure mode (fail-before + three torn-write
//! seeds) replays the lifecycle with the power cut at `k`. Every pass
//! must uphold:
//!
//! * **shutdown always drains** — every accepted job reaches a
//!   terminal state even while the store is dying underneath; the
//!   daemon neither hangs nor panics, and dropping it releases the
//!   advisory lock;
//! * **acknowledged means durable** — any ingest the daemon reported
//!   `Done` materializes byte-exactly after a real-filesystem reopen
//!   (which replays the store's intent journal);
//! * **failed means invisible** — an ingest the crash killed leaves no
//!   trace: after recovery the object is absent and a retry lands it
//!   cleanly; scrub is clean, the dedup ledger balances, gc converges;
//! * **reports survive the crash** — compare jobs re-run against the
//!   recovered store produce **byte-identical** documents to the ones
//!   the healthy counting-pass daemon served.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use reprocmp::server::{execute_spec, JobSpec, JobState, ObjectRef, Server, ServerConfig};
use reprocmp_core::{CompareEngine, EngineConfig};
use reprocmp_io::{CrashMode, CrashPlan};
use reprocmp_store::{ChunkStore, CrashFs, StoreFs};
use serde::{Serialize, Value};

const CHUNK: usize = 64;
const VALUES_PER_OBJECT: usize = 64;
const TORN_SEEDS: [u64; 3] = [0x00c0_ffee, 0x1bad_b002, 0x5eed_cafe];

fn fresh_root(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("reprocmp-srv-torture-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    root
}

/// The vendored serde has no blanket `Serialize` for `Value`; this
/// shim lets `serde_json` render result documents for byte-identity
/// checks (same idiom as the concurrency oracle).
struct Shim(Value);

impl Serialize for Shim {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

fn encode_value(v: &Value) -> String {
    serde_json::to_string(&Shim(v.clone())).expect("encode result document")
}

/// Each object's payload sits in its own value band (`salt * 100`),
/// so no two objects — and no two versions — ever share a chunk.
/// That keeps dedup attribution, and therefore the store's mutation
/// count, independent of how the two workers interleave the ingests:
/// the counting pass and every crash pass cross the same number of
/// mutation boundaries.
fn object_payload(salt: u32) -> Vec<u8> {
    (0..VALUES_PER_OBJECT)
        .flat_map(|i| (salt as f32 * 100.0 + i as f32 * 0.25).to_le_bytes())
        .collect()
}

fn obj(name: &str, version: u64) -> ObjectRef {
    ObjectRef {
        name: name.to_owned(),
        version,
    }
}

/// Write traffic: four chunk-disjoint objects.
fn ingest_specs() -> Vec<JobSpec> {
    [
        ("run_a", 1, 1),
        ("run_a", 2, 2),
        ("run_b", 1, 3),
        ("run_b", 2, 4),
    ]
    .into_iter()
    .map(|(name, version, salt)| JobSpec::Ingest {
        name: name.to_owned(),
        version,
        chunk_bytes: CHUNK,
        data: object_payload(salt),
    })
    .collect()
}

/// Read traffic: compares and a materialize over the ingested set.
fn read_specs() -> Vec<JobSpec> {
    vec![
        JobSpec::Compare {
            left: obj("run_a", 1),
            right: obj("run_a", 2),
        },
        JobSpec::Compare {
            left: obj("run_a", 1),
            right: obj("run_b", 1),
        },
        JobSpec::CompareMany {
            baseline: obj("run_a", 1),
            runs: vec![obj("run_a", 2), obj("run_b", 1), obj("run_b", 2)],
        },
        JobSpec::Materialize {
            name: "run_b".to_owned(),
            version: 2,
        },
    ]
}

fn daemon_config(root: &Path, fs: Arc<dyn StoreFs>) -> ServerConfig {
    ServerConfig {
        chunk_bytes: CHUNK,
        workers: 2,
        queue_capacity: 32,
        quantum: 4,
        fs,
        ..ServerConfig::rooted_at(root)
    }
}

/// The engine the daemon runs — rebuilt identically for offline
/// replay so recovered-store reports are comparable byte-for-byte.
fn daemon_engine() -> CompareEngine {
    CompareEngine::new(EngineConfig {
        chunk_bytes: CHUNK,
        error_bound: 1e-5,
        ..EngineConfig::default()
    })
}

/// One full daemon lifetime over `fs`: start, submit the write
/// traffic (armed mid-flight when `arm` is given), then the read
/// traffic, then graceful shutdown. Returns every job's terminal
/// outcome — panics if any accepted job fails to drain.
fn run_lifecycle(
    root: &Path,
    fs: Arc<dyn StoreFs>,
    arm: Option<&CrashPlan>,
    ctx: &str,
) -> Vec<(JobSpec, JobState, Option<Value>, Option<String>)> {
    let server = Server::start(daemon_config(root, fs))
        .unwrap_or_else(|e| panic!("{ctx}: daemon start: {e}"));
    assert!(
        ChunkStore::lock_owner(root).is_some(),
        "{ctx}: a running daemon must hold the advisory lock"
    );
    if let Some(plan) = arm {
        plan.arm();
    }

    let mut ids = Vec::new();
    for spec in ingest_specs() {
        let id = server
            .submit("torture", spec.clone())
            .unwrap_or_else(|e| panic!("{ctx}: submit {}: {e}", spec.verb()));
        ids.push((id, spec));
    }
    // Barrier: read jobs only go in once every ingest is terminal, so
    // the healthy pass's compare results are well-defined goldens.
    for (id, _) in &ids {
        let _ = server.wait(*id);
    }
    for spec in read_specs() {
        let id = server
            .submit("torture", spec.clone())
            .unwrap_or_else(|e| panic!("{ctx}: submit {}: {e}", spec.verb()));
        ids.push((id, spec));
    }

    // The contract under test: graceful shutdown drains every
    // admitted job to a terminal state — even mid-power-failure.
    server.shutdown();

    let outcomes = ids
        .into_iter()
        .map(|(id, spec)| {
            let status = server
                .status(id)
                .unwrap_or_else(|| panic!("{ctx}: job {id} vanished"));
            assert!(
                status.state.is_terminal(),
                "{ctx}: job {id} ({}) not drained: {:?}",
                spec.verb(),
                status.state
            );
            (spec, status.state, status.result, status.error)
        })
        .collect();
    drop(server);
    assert!(
        ChunkStore::lock_owner(root).is_none(),
        "{ctx}: dropping the daemon must release the advisory lock"
    );
    outcomes
}

/// Post-crash verification on the real filesystem: reopen (replays
/// the intent journal), re-land what the crash killed, and hold the
/// recovered store to the full honesty checklist.
fn verify_recovery(
    root: &Path,
    outcomes: &[(JobSpec, JobState, Option<Value>, Option<String>)],
    golden_reports: &BTreeMap<String, String>,
    ctx: &str,
) {
    let store =
        ChunkStore::open(root).unwrap_or_else(|e| panic!("{ctx}: reopen after crash failed: {e}"));
    let engine = daemon_engine();

    // Acknowledged means durable: every ingest the daemon answered
    // `Done` for must survive the crash byte-exactly.
    for (spec, state, _, _) in outcomes {
        let JobSpec::Ingest {
            name,
            version,
            data,
            ..
        } = spec
        else {
            continue;
        };
        if *state == JobState::Done {
            let got = store.materialize(name, *version).unwrap_or_else(|e| {
                panic!("{ctx}: acknowledged ingest {name}@{version} lost: {e}")
            });
            assert_eq!(
                &got, data,
                "{ctx}: acknowledged ingest {name}@{version} must be byte-exact"
            );
        }
    }

    // Failed means invisible — and retryable: the crashed ingest left
    // nothing addressable, so re-landing it through the same engine
    // path must succeed cleanly.
    for spec in ingest_specs() {
        let JobSpec::Ingest {
            ref name,
            version,
            ref data,
            ..
        } = spec
        else {
            unreachable!()
        };
        if store.materialize(name, version).is_err() {
            let outcome = execute_spec(&store, &engine, &spec);
            let result = outcome
                .result
                .unwrap_or_else(|e| panic!("{ctx}: re-landing {name}@{version} failed: {e}"));
            assert!(
                matches!(result, Value::Object(_)),
                "{ctx}: retried ingest must return its stats document"
            );
            let got = store
                .materialize(name, version)
                .expect("retried ingest lands");
            assert_eq!(&got, data, "{ctx}: retried {name}@{version} byte-exact");
        }
    }

    // Store honesty after recovery + retries.
    let scrub = store
        .scrub()
        .unwrap_or_else(|e| panic!("{ctx}: scrub: {e}"));
    assert!(
        scrub.is_clean(),
        "{ctx}: scrub found rot after recovery: {:?}",
        scrub.failures
    );
    store.gc().unwrap_or_else(|e| panic!("{ctx}: gc: {e}"));
    store
        .compact()
        .unwrap_or_else(|e| panic!("{ctx}: compact: {e}"));
    let stats = store.stats();
    let logical: u64 = ingest_specs()
        .iter()
        .map(|s| match s {
            JobSpec::Ingest { data, .. } => data.len() as u64,
            _ => 0,
        })
        .sum();
    assert_eq!(stats.objects, 4, "{ctx}: all four objects present");
    assert_eq!(stats.bytes_logical, logical, "{ctx}: logical bytes");
    // Chunk-disjoint payloads: nothing dedups, so physical == logical.
    assert_eq!(stats.bytes_physical, logical, "{ctx}: physical bytes");
    assert_eq!(
        stats.bytes_logical,
        stats.bytes_physical + stats.bytes_deduped + stats.bytes_skipped,
        "{ctx}: ledger must balance"
    );
    let gc2 = store.gc().unwrap_or_else(|e| panic!("{ctx}: gc: {e}"));
    assert_eq!(gc2.packs_deleted, 0, "{ctx}: gc must have converged");

    // Reports survive the crash: the recovered store answers every
    // read job byte-identically to the healthy daemon's goldens.
    for spec in read_specs() {
        let outcome = execute_spec(&store, &engine, &spec);
        let value = outcome
            .result
            .unwrap_or_else(|e| panic!("{ctx}: {} on recovered store: {e}", spec.verb()));
        let got = encode_value(&value);
        let golden = &golden_reports[&format!("{spec:?}")];
        assert_eq!(
            &got,
            golden,
            "{ctx}: {} report drifted across crash recovery",
            spec.verb()
        );
    }
}

#[test]
fn torture_daemon_lifecycle_every_crash_point() {
    // Counting pass: a healthy daemon lifetime numbers every store
    // mutation and pins the golden read-job reports.
    let root = fresh_root("count");
    let plan = CrashPlan::observe();
    let outcomes = run_lifecycle(
        &root,
        Arc::new(CrashFs::new(Arc::clone(&plan))),
        Some(&plan),
        "counting pass",
    );
    let points = plan.mutations();
    assert!(points > 0, "daemon traffic crossed no mutation boundaries");
    let mut golden_reports = BTreeMap::new();
    for (spec, state, result, error) in &outcomes {
        assert_eq!(
            *state,
            JobState::Done,
            "counting pass: {} must succeed (error: {error:?})",
            spec.verb()
        );
        if !matches!(spec, JobSpec::Ingest { .. }) {
            golden_reports.insert(
                format!("{spec:?}"),
                encode_value(result.as_ref().expect("done jobs carry results")),
            );
        }
    }
    std::fs::remove_dir_all(&root).ok();

    let mut modes = vec![CrashMode::Before];
    modes.extend(TORN_SEEDS.map(|seed| CrashMode::Torn { seed }));

    for k in 1..=points {
        for (m, &mode) in modes.iter().enumerate() {
            let ctx = format!("daemon crash point {k}/{points} mode {m}");
            let root = fresh_root(&format!("k{k}-m{m}"));
            let plan = CrashPlan::at(k, mode);
            let outcomes = run_lifecycle(
                &root,
                Arc::new(CrashFs::new(Arc::clone(&plan))),
                Some(&plan),
                &ctx,
            );
            assert!(plan.crashed(), "{ctx}: plan never fired");
            // At least one write job saw the power failure; the daemon
            // must have recorded it as a failure, not swallowed it.
            assert!(
                outcomes
                    .iter()
                    .any(|(_, state, _, _)| *state == JobState::Failed),
                "{ctx}: the crash must surface as at least one failed job"
            );
            for (spec, state, _, error) in &outcomes {
                if *state == JobState::Failed {
                    let message = error.as_deref().unwrap_or("");
                    assert!(
                        !message.is_empty(),
                        "{ctx}: failed {} must carry an error message",
                        spec.verb()
                    );
                }
            }
            verify_recovery(&root, &outcomes, &golden_reports, &ctx);
            std::fs::remove_dir_all(&root).ok();
        }
    }
}
