//! Why the paper bothers with io_uring: scattered chunk verification
//! is an adversarial I/O pattern, and the backend choice decides
//! whether the Merkle method's savings survive contact with the file
//! system. This example reproduces the Figure 9 experiment shape on
//! the simulated PFS: the same scattered read set through the
//! uring-style rings, the mmap-style page-faulting path, and naive
//! blocking reads — reporting deterministic modeled times.
//!
//! ```sh
//! cargo run --example io_backend_tuning
//! ```

use reprocmp::io::cost::OpSpec;
use reprocmp::io::pipeline::{read_all, BackendKind, PipelineConfig};
use reprocmp::io::{CostModel, MemStorage};
use std::sync::Arc;

fn main() {
    // A 64 MiB "checkpoint" on the simulated Lustre PFS.
    let file_len = 64 << 20;
    let data = vec![0u8; file_len];

    // 2% of chunks flagged, scattered across the file — the stage-two
    // read pattern under a tight error bound.
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>9}",
        "chunk", "uring", "mmap", "blocking", "mmap/uring"
    );
    for chunk in [4 * 1024, 8 * 1024, 16 * 1024] {
        let n_chunks = file_len / chunk;
        let flagged: Vec<OpSpec> = (0..n_chunks)
            .filter(|i| i % 50 == 7)
            .map(|i| ((i * chunk) as u64, chunk))
            .collect();

        let modeled = |backend: BackendKind| {
            let storage = MemStorage::with_model(data.clone(), CostModel::lustre_pfs());
            let clock = storage.clock();
            let cfg = PipelineConfig {
                backend,
                slice_bytes: 8 << 20,
                io_threads: 4,
                queue_depth: 64,
                buffers: 2,
                ..PipelineConfig::default()
            };
            read_all(Arc::new(storage), &flagged, cfg).expect("stream");
            clock.now()
        };

        let t_uring = modeled(BackendKind::Uring);
        let t_mmap = modeled(BackendKind::Mmap);
        let t_block = modeled(BackendKind::Blocking);
        println!(
            "{:>8}KB {:>10.2?} {:>10.2?} {:>10.2?} {:>8.1}x",
            chunk / 1024,
            t_uring,
            t_mmap,
            t_block,
            t_mmap.as_secs_f64() / t_uring.as_secs_f64()
        );
        assert!(t_uring < t_mmap, "uring must beat mmap on scattered reads");
    }

    println!("\nOK: asynchronous batched submission amortizes seek latency across");
    println!("the queue depth; synchronous page faults cannot (the paper's Fig. 9).");
}
