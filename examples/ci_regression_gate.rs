//! The paper's conclusion sketches a CI use case: "applications with a
//! defined error bound can save a Merkle tree for the expected results
//! of a test. If the method detects any differences then the
//! developers know that the code change may introduce a
//! reproducibility issue."
//!
//! This example is that gate. A *golden* run's metadata (a few percent
//! of the data size) is stored in the repository; each candidate build
//! re-runs the test and is compared against the golden tree. When the
//! trees agree, the gate passes **without reading any golden data at
//! all** — only metadata moved.
//!
//! ```sh
//! cargo run --example ci_regression_gate
//! ```

use reprocmp::core::{CheckpointSource, CompareEngine, EngineConfig};
use reprocmp::hacc::{HaccConfig, OrderPolicy, Simulation};

/// The "application test": a short deterministic simulation whose
/// final particle x-positions are the test's observable result.
fn run_application_test(extra_kick: f32) -> Vec<f32> {
    let mut cfg = HaccConfig::small();
    cfg.particles = 1_024;
    cfg.order = OrderPolicy::Sequential;
    let mut sim = Simulation::new(cfg);
    sim.run(10);
    let mut xs = sim.particles().x.clone();
    // `extra_kick` stands in for a code change's numerical effect.
    if extra_kick != 0.0 {
        for v in xs.iter_mut().skip(100).take(8) {
            *v = (*v + extra_kick).rem_euclid(1.0);
        }
    }
    xs
}

fn gate(engine: &CompareEngine, golden: &CheckpointSource, candidate: &[f32]) -> bool {
    let cand = CheckpointSource::in_memory(candidate, engine).expect("candidate source");
    let report = engine.compare(golden, &cand).expect("gate comparison");
    if report.identical() {
        println!(
            "  PASS — trees agree; {} bytes of checkpoint data read (metadata only)",
            report.stats.bytes_reread
        );
        true
    } else {
        println!(
            "  FAIL — {} values moved beyond the bound; first offenders:",
            report.stats.diff_count
        );
        for d in report.differences.iter().take(5) {
            println!("    result[{}]: golden {:.6} vs candidate {:.6}", d.index, d.a, d.b);
        }
        false
    }
}

fn main() {
    let engine = CompareEngine::new(EngineConfig {
        chunk_bytes: 512,
        error_bound: 1e-4, // the application's accepted tolerance
        ..EngineConfig::default()
    });

    println!("recording golden result + Merkle metadata…");
    let golden_values = run_application_test(0.0);
    let golden = CheckpointSource::in_memory(&golden_values, &engine).expect("golden source");
    println!(
        "  golden payload {} bytes, metadata {} bytes",
        golden.payload_len,
        golden.metadata.len()
    );

    println!("\ncandidate A: refactoring with no numerical effect");
    let ok = gate(&engine, &golden, &run_application_test(0.0));
    assert!(ok);

    println!("\ncandidate B: change shifts 8 results by 5e-3 (50x the bound)");
    let ok = gate(&engine, &golden, &run_application_test(5e-3));
    assert!(!ok);

    println!("\ncandidate C: change shifts results by 2e-5 (within the bound)");
    let ok = gate(&engine, &golden, &run_application_test(2e-5));
    assert!(ok, "sub-tolerance drift must not fail the gate");

    println!("\nOK: the gate admits tolerable drift and catches regressions.");
}
