//! The paper's conclusion sketches a CI use case: "applications with a
//! defined error bound can save a Merkle tree for the expected results
//! of a test. If the method detects any differences then the
//! developers know that the code change may introduce a
//! reproducibility issue."
//!
//! This example is that gate. A *golden* run's metadata (a few percent
//! of the data size) is stored in the repository; each candidate build
//! re-runs the test and is compared against the golden tree. When the
//! trees agree, the gate passes **without reading any golden data at
//! all** — only metadata moved.
//!
//! It also gates *performance*: the stage breakdown of a known-failing
//! comparison is diffed against the committed baseline in
//! `examples/ci_baseline_breakdown.json`, and the gate fails when
//! stage-2 bytes-read regresses by more than 10 % — the early-warning
//! signal that pruning got worse or reads stopped being targeted.
//!
//! ```sh
//! cargo run --example ci_regression_gate
//! # after an intentional engine change:
//! UPDATE_BASELINE=1 cargo run --example ci_regression_gate
//! ```

use reprocmp::core::{CheckpointSource, CompareEngine, CompareReport, EngineConfig};
use reprocmp::hacc::{HaccConfig, OrderPolicy, Simulation};
use reprocmp::store::ChunkStore;
use std::path::PathBuf;

/// The "application test": a short deterministic simulation whose
/// final particle x-positions are the test's observable result.
fn run_application_test(extra_kick: f32) -> Vec<f32> {
    let mut cfg = HaccConfig::small();
    cfg.particles = 1_024;
    cfg.order = OrderPolicy::Sequential;
    let mut sim = Simulation::new(cfg);
    sim.run(10);
    let mut xs = sim.particles().x.clone();
    // `extra_kick` stands in for a code change's numerical effect.
    if extra_kick != 0.0 {
        for v in xs.iter_mut().skip(100).take(8) {
            *v = (*v + extra_kick).rem_euclid(1.0);
        }
    }
    xs
}

fn gate(
    engine: &CompareEngine,
    golden: &CheckpointSource,
    candidate: &[f32],
) -> (bool, CompareReport) {
    let cand = CheckpointSource::in_memory(candidate, engine).expect("candidate source");
    let report = engine.compare(golden, &cand).expect("gate comparison");
    let passed = if report.identical() {
        println!(
            "  PASS — trees agree; {} bytes of checkpoint data read (metadata only)",
            report.stats.bytes_reread
        );
        true
    } else {
        println!(
            "  FAIL — {} values moved beyond the bound; first offenders:",
            report.stats.diff_count
        );
        for d in report.differences.iter().take(5) {
            println!(
                "    result[{}]: golden {:.6} vs candidate {:.6}",
                d.index, d.a, d.b
            );
        }
        false
    };
    (passed, report)
}

/// Pulls `"bytes": N` out of the `"stage2_stream"` object of a
/// serialized [`StageBreakdown`] by substring search (the vendored
/// JSON support is serialize-only, and a full parser would be overkill
/// for one committed, machine-written file).
fn extract_stage2_bytes(json: &str) -> Option<u64> {
    let obj = &json[json.find("\"stage2_stream\"")?..];
    let after = &obj[obj.find("\"bytes\":")? + "\"bytes\":".len()..];
    let digits: String = after
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/ci_baseline_breakdown.json")
}

/// The performance half of the gate: stage-2 bytes-read against the
/// committed baseline breakdown. Returns `false` on a >10 % regression.
fn io_budget_gate(report: &CompareReport) -> bool {
    let current = report.stages.stage2_stream.bytes;
    let mut json = serde_json::to_string_pretty(&report.stages).expect("serialize breakdown");
    json.push('\n');
    let path = baseline_path();

    if std::env::var("UPDATE_BASELINE").is_ok_and(|v| v == "1") || !path.exists() {
        std::fs::write(&path, &json).expect("write baseline breakdown");
        println!("  baseline breakdown written to {}", path.display());
        return true;
    }
    let baseline_json = std::fs::read_to_string(&path).expect("read baseline breakdown");
    let baseline = extract_stage2_bytes(&baseline_json).expect("baseline has stage2_stream.bytes");
    // Integer-safe "current > 110% of baseline".
    if current * 10 > baseline * 11 {
        println!(
            "  FAIL — stage-2 read {current} bytes, > 10% over the baseline {baseline} \
             (UPDATE_BASELINE=1 accepts an intentional change)"
        );
        false
    } else {
        println!("  PASS — stage-2 read {current} bytes (baseline {baseline}, budget +10%)");
        true
    }
}

/// The capture half of the gate: ingesting the golden result plus two
/// candidates into the content-addressed store must stay within a
/// deterministic physical-bytes budget. An identical candidate must
/// add **zero** physical bytes; a candidate whose drift is confined to
/// one chunk may add at most that chunk. A blow-up here means chunk
/// addressing or dedup regressed, even if the verdicts are still right.
fn ingest_budget_gate(
    engine: &CompareEngine,
    golden: &[f32],
    identical: &[f32],
    drifted: &[f32],
) -> bool {
    let chunk = engine.config().chunk_bytes;
    let root = std::env::temp_dir().join(format!("reprocmp-ci-gate-store-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let store = ChunkStore::open(&root).expect("open gate store");

    let as_bytes = |v: &[f32]| -> Vec<u8> { v.iter().flat_map(|x| x.to_le_bytes()).collect() };
    let base = store
        .ingest("golden", 1, &[("x", &as_bytes(golden))], chunk, &[])
        .expect("ingest golden");
    let same = store
        .ingest("candidateA", 1, &[("x", &as_bytes(identical))], chunk, &[])
        .expect("ingest candidate A");
    let drift = store
        .ingest("candidateC", 1, &[("x", &as_bytes(drifted))], chunk, &[])
        .expect("ingest candidate C");
    let totals = store.stats();
    std::fs::remove_dir_all(&root).ok();

    let mut ok = true;
    if same.bytes_physical != 0 {
        println!(
            "  FAIL — identical candidate wrote {} physical bytes (must dedup to 0)",
            same.bytes_physical
        );
        ok = false;
    }
    // Candidate C's 8 drifted values live in one chunk; its ingest may
    // write at most that one chunk of new physical bytes.
    if drift.bytes_physical > chunk as u64 {
        println!(
            "  FAIL — drifted candidate wrote {} physical bytes (> one {chunk} B chunk)",
            drift.bytes_physical
        );
        ok = false;
    }
    for (who, s) in [
        ("golden", &base),
        ("candidate A", &same),
        ("candidate C", &drift),
    ] {
        if s.bytes_logical != s.bytes_physical + s.bytes_deduped {
            println!(
                "  FAIL — {who} ledger off: logical {} != physical {} + deduped {}",
                s.bytes_logical, s.bytes_physical, s.bytes_deduped
            );
            ok = false;
        }
    }
    if totals.bytes_logical != totals.bytes_physical + totals.bytes_deduped {
        println!(
            "  FAIL — store ledger off: logical {} != physical {} + deduped {}",
            totals.bytes_logical, totals.bytes_physical, totals.bytes_deduped
        );
        ok = false;
    }
    if ok {
        println!(
            "  PASS — 3 ingests: {} logical bytes, {} physical ({} deduped; \
             identical candidate added 0)",
            totals.bytes_logical, totals.bytes_physical, totals.bytes_deduped
        );
    }
    ok
}

fn main() {
    let engine = CompareEngine::new(EngineConfig {
        chunk_bytes: 512,
        error_bound: 1e-4, // the application's accepted tolerance
        ..EngineConfig::default()
    });

    println!("recording golden result + Merkle metadata…");
    let golden_values = run_application_test(0.0);
    let golden = CheckpointSource::in_memory(&golden_values, &engine).expect("golden source");
    println!(
        "  golden payload {} bytes, metadata {} bytes",
        golden.payload_len,
        golden.metadata.len()
    );

    println!("\ncandidate A: refactoring with no numerical effect");
    let (ok, _) = gate(&engine, &golden, &run_application_test(0.0));
    assert!(ok);

    println!("\ncandidate B: change shifts 8 results by 5e-3 (50x the bound)");
    let (ok, report_b) = gate(&engine, &golden, &run_application_test(5e-3));
    assert!(!ok);

    println!("\ncandidate C: change shifts results by 2e-5 (within the bound)");
    let (ok, _) = gate(&engine, &golden, &run_application_test(2e-5));
    assert!(ok, "sub-tolerance drift must not fail the gate");

    // Candidate B's comparison is deterministic (sequential order,
    // fixed geometry), so its stage breakdown doubles as the I/O
    // budget fixture: if the engine starts reading more than 110 % of
    // the committed stage-2 bytes for the same divergence, pruning
    // regressed and the gate says so.
    println!("\nstage-2 I/O budget (vs examples/ci_baseline_breakdown.json):");
    if !io_budget_gate(&report_b) {
        std::process::exit(1);
    }

    println!("\ncapture-store ingest budget (physical bytes per candidate):");
    if !ingest_budget_gate(
        &engine,
        &golden_values,
        &run_application_test(0.0),
        &run_application_test(2e-5),
    ) {
        std::process::exit(1);
    }

    println!("\nOK: the gate admits tolerable drift and catches regressions.");
}
