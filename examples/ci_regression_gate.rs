//! The paper's conclusion sketches a CI use case: "applications with a
//! defined error bound can save a Merkle tree for the expected results
//! of a test. If the method detects any differences then the
//! developers know that the code change may introduce a
//! reproducibility issue."
//!
//! This example is that gate. A *golden* run's metadata (a few percent
//! of the data size) is stored in the repository; each candidate build
//! re-runs the test and is compared against the golden tree. When the
//! trees agree, the gate passes **without reading any golden data at
//! all** — only metadata moved.
//!
//! It also gates *performance*: the stage breakdown of a known-failing
//! comparison is diffed against the committed baseline in
//! `examples/ci_baseline_breakdown.json`, and the gate fails when
//! stage-2 bytes-read regresses by more than 10 % — the early-warning
//! signal that pruning got worse or reads stopped being targeted.
//!
//! ```sh
//! cargo run --example ci_regression_gate
//! # after an intentional engine change:
//! UPDATE_BASELINE=1 cargo run --example ci_regression_gate
//! ```

use reprocmp::core::{CheckpointSource, CompareEngine, CompareReport, EngineConfig};
use reprocmp::hacc::{HaccConfig, OrderPolicy, Simulation};
use reprocmp::store::ChunkStore;
use std::path::PathBuf;

/// The "application test": a short deterministic simulation whose
/// final particle x-positions are the test's observable result.
fn run_application_test(extra_kick: f32) -> Vec<f32> {
    let mut cfg = HaccConfig::small();
    cfg.particles = 1_024;
    cfg.order = OrderPolicy::Sequential;
    let mut sim = Simulation::new(cfg);
    sim.run(10);
    let mut xs = sim.particles().x.clone();
    // `extra_kick` stands in for a code change's numerical effect.
    if extra_kick != 0.0 {
        for v in xs.iter_mut().skip(100).take(8) {
            *v = (*v + extra_kick).rem_euclid(1.0);
        }
    }
    xs
}

fn gate(
    engine: &CompareEngine,
    golden: &CheckpointSource,
    candidate: &[f32],
) -> (bool, CompareReport) {
    let cand = CheckpointSource::in_memory(candidate, engine).expect("candidate source");
    let report = engine.compare(golden, &cand).expect("gate comparison");
    let passed = if report.identical() {
        println!(
            "  PASS — trees agree; {} bytes of checkpoint data read (metadata only)",
            report.stats.bytes_reread
        );
        true
    } else {
        println!(
            "  FAIL — {} values moved beyond the bound; first offenders:",
            report.stats.diff_count
        );
        for d in report.differences.iter().take(5) {
            println!(
                "    result[{}]: golden {:.6} vs candidate {:.6}",
                d.index, d.a, d.b
            );
        }
        false
    };
    (passed, report)
}

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/ci_baseline_breakdown.json")
}

/// Strips wall times from a breakdown. The gate's inputs are byte- and
/// op-deterministic (sequential order, fixed geometry) but times are
/// not; a committed baseline with zeroed times makes `diff_profiles`
/// check exactly the deterministic shape (`time` checks never fire
/// from a zero baseline).
fn without_times(stages: &reprocmp::obs::StageBreakdown) -> reprocmp::obs::StageBreakdown {
    let mut s = *stages;
    for phase in [
        &mut s.quantize,
        &mut s.leaf_hash,
        &mut s.level_build,
        &mut s.bfs,
        &mut s.stage2_stream,
        &mut s.store_read,
        &mut s.verify,
    ] {
        phase.time = std::time::Duration::ZERO;
    }
    s
}

/// The performance half of the gate: the candidate comparison's stage
/// profile against the committed baseline, through the same
/// [`diff_profiles`](reprocmp::obs::diff_profiles) engine that backs
/// `reprocmp perf-diff`. Returns `false` on a >10 % regression in any
/// phase's bytes or ops (stage-2 bytes-read blowing up — pruning got
/// worse — is the canonical trigger).
fn io_budget_gate(report: &CompareReport) -> bool {
    use reprocmp::obs::{diff_profiles, ProfileBaseline};

    let current = ProfileBaseline::new(without_times(&report.stages));
    let path = baseline_path();

    if std::env::var("UPDATE_BASELINE").is_ok_and(|v| v == "1") || !path.exists() {
        let mut json = current.to_json();
        json.push('\n');
        std::fs::write(&path, &json).expect("write baseline breakdown");
        println!("  baseline profile written to {}", path.display());
        return true;
    }
    let baseline_json = std::fs::read_to_string(&path).expect("read baseline breakdown");
    // `parse` accepts both the current `ProfileBaseline` shape and the
    // bare pre-flight-recorder `StageBreakdown` files.
    let mut baseline = ProfileBaseline::parse(&baseline_json).expect("parse baseline profile");
    baseline.stages = without_times(&baseline.stages);
    let diff = diff_profiles(&baseline, &current, 0.10);
    print!("{}", indent(&diff.render()));
    if !diff.passed() {
        println!("  (UPDATE_BASELINE=1 accepts an intentional change)");
    }
    diff.passed()
}

fn indent(text: &str) -> String {
    text.lines().fold(String::new(), |mut s, line| {
        s.push_str("  ");
        s.push_str(line);
        s.push('\n');
        s
    })
}

/// The capture half of the gate: ingesting the golden result plus two
/// candidates into the content-addressed store must stay within a
/// deterministic physical-bytes budget. An identical candidate must
/// add **zero** physical bytes; a candidate whose drift is confined to
/// one chunk may add at most that chunk. A blow-up here means chunk
/// addressing or dedup regressed, even if the verdicts are still right.
fn ingest_budget_gate(
    engine: &CompareEngine,
    golden: &[f32],
    identical: &[f32],
    drifted: &[f32],
) -> bool {
    let chunk = engine.config().chunk_bytes;
    let root = std::env::temp_dir().join(format!("reprocmp-ci-gate-store-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let store = ChunkStore::open(&root).expect("open gate store");

    let as_bytes = |v: &[f32]| -> Vec<u8> { v.iter().flat_map(|x| x.to_le_bytes()).collect() };
    let base = store
        .ingest("golden", 1, &[("x", &as_bytes(golden))], chunk, &[])
        .expect("ingest golden");
    let same = store
        .ingest("candidateA", 1, &[("x", &as_bytes(identical))], chunk, &[])
        .expect("ingest candidate A");
    let drift = store
        .ingest("candidateC", 1, &[("x", &as_bytes(drifted))], chunk, &[])
        .expect("ingest candidate C");
    let totals = store.stats();
    std::fs::remove_dir_all(&root).ok();

    let mut ok = true;
    if same.bytes_physical != 0 {
        println!(
            "  FAIL — identical candidate wrote {} physical bytes (must dedup to 0)",
            same.bytes_physical
        );
        ok = false;
    }
    // Candidate C's 8 drifted values live in one chunk; its ingest may
    // write at most that one chunk of new physical bytes.
    if drift.bytes_physical > chunk as u64 {
        println!(
            "  FAIL — drifted candidate wrote {} physical bytes (> one {chunk} B chunk)",
            drift.bytes_physical
        );
        ok = false;
    }
    for (who, s) in [
        ("golden", &base),
        ("candidate A", &same),
        ("candidate C", &drift),
    ] {
        if s.bytes_logical != s.bytes_physical + s.bytes_deduped {
            println!(
                "  FAIL — {who} ledger off: logical {} != physical {} + deduped {}",
                s.bytes_logical, s.bytes_physical, s.bytes_deduped
            );
            ok = false;
        }
    }
    if totals.bytes_logical != totals.bytes_physical + totals.bytes_deduped {
        println!(
            "  FAIL — store ledger off: logical {} != physical {} + deduped {}",
            totals.bytes_logical, totals.bytes_physical, totals.bytes_deduped
        );
        ok = false;
    }
    if ok {
        println!(
            "  PASS — 3 ingests: {} logical bytes, {} physical ({} deduped; \
             identical candidate added 0)",
            totals.bytes_logical, totals.bytes_physical, totals.bytes_deduped
        );
    }
    ok
}

fn main() {
    let engine = CompareEngine::new(EngineConfig {
        chunk_bytes: 512,
        error_bound: 1e-4, // the application's accepted tolerance
        ..EngineConfig::default()
    });

    println!("recording golden result + Merkle metadata…");
    let golden_values = run_application_test(0.0);
    let golden = CheckpointSource::in_memory(&golden_values, &engine).expect("golden source");
    println!(
        "  golden payload {} bytes, metadata {} bytes",
        golden.payload_len,
        golden.metadata.len()
    );

    println!("\ncandidate A: refactoring with no numerical effect");
    let (ok, _) = gate(&engine, &golden, &run_application_test(0.0));
    assert!(ok);

    println!("\ncandidate B: change shifts 8 results by 5e-3 (50x the bound)");
    let (ok, report_b) = gate(&engine, &golden, &run_application_test(5e-3));
    assert!(!ok);

    println!("\ncandidate C: change shifts results by 2e-5 (within the bound)");
    let (ok, _) = gate(&engine, &golden, &run_application_test(2e-5));
    assert!(ok, "sub-tolerance drift must not fail the gate");

    // Candidate B's comparison is deterministic (sequential order,
    // fixed geometry), so its stage breakdown doubles as the I/O
    // budget fixture: if the engine starts reading more than 110 % of
    // the committed stage-2 bytes for the same divergence, pruning
    // regressed and the gate says so.
    println!("\nstage-2 I/O budget (vs examples/ci_baseline_breakdown.json):");
    if !io_budget_gate(&report_b) {
        std::process::exit(1);
    }

    println!("\ncapture-store ingest budget (physical bytes per candidate):");
    if !ingest_budget_gate(
        &engine,
        &golden_values,
        &run_application_test(0.0),
        &run_application_test(2e-5),
    ) {
        std::process::exit(1);
    }

    println!("\nOK: the gate admits tolerable drift and catches regressions.");
}
