//! Quickstart: compare two in-memory "runs" under an error bound.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use reprocmp::core::{CheckpointSource, CompareEngine, EngineConfig};

fn main() {
    // A 4 MiB checkpoint payload (1 Mi f32 values).
    let n = 1 << 20;
    let run1: Vec<f32> = (0..n).map(|i| (i as f32 * 1e-4).sin() * 10.0).collect();

    // Run 2 reproduces run 1 except for a handful of values: two far
    // above the bound, one just below it.
    let mut run2 = run1.clone();
    run2[123_456] += 3e-2;
    run2[900_000] -= 1e-3;
    run2[500_000] += 4e-6; // inside the bound — must NOT be reported

    let engine = CompareEngine::new(EngineConfig {
        chunk_bytes: 4096,
        error_bound: 1e-5,
        ..EngineConfig::default()
    });

    let a = CheckpointSource::in_memory(&run1, &engine).expect("run 1 source");
    let b = CheckpointSource::in_memory(&run2, &engine).expect("run 2 source");
    let report = engine.compare(&a, &b).expect("comparison");

    println!(
        "checkpoint: {} values ({} bytes)",
        report.stats.total_values, report.stats.total_bytes
    );
    println!(
        "chunks: {} total, {} flagged by the Merkle stage, {} false positives",
        report.stats.chunks_total, report.stats.chunks_flagged, report.stats.false_positive_chunks
    );
    println!(
        "stage 2 re-read {} bytes ({:.3}% of the checkpoint)",
        report.stats.bytes_reread,
        100.0 * report.stats.flagged_fraction()
    );
    println!("differences above the bound: {}", report.stats.diff_count);
    for d in &report.differences {
        println!("  value[{}]: {:>12.6} vs {:>12.6}", d.index, d.a, d.b);
    }

    assert_eq!(
        report.stats.diff_count, 2,
        "exactly the two injected changes"
    );
    println!("\nOK: localized exactly the injected differences without reading the full data.");
}
