//! The paper's Figure 1, reproduced end to end: two runs of the same
//! cosmological simulation from the same initial conditions disagree
//! about whether a galactic halo exists.
//!
//! Tiny scheduling-order divergence (bitwise noise in force sums) is
//! amplified by chaotic dynamics until a marginal friends-of-friends
//! group crosses the membership threshold in one run and not the
//! other — a categorical scientific difference born from sub-ε
//! numerics. The checkpoint comparator is the tool that catches the
//! drift *early*, before it becomes a missing halo.
//!
//! ```sh
//! cargo run --release --example missing_halo
//! ```

use reprocmp::core::{CheckpointSource, CompareEngine, EngineConfig};
use reprocmp::hacc::halo::halo_census;
use reprocmp::hacc::{HaccConfig, OrderPolicy, Simulation};

const STEPS: u64 = 300;
const LINKING_LENGTH: f32 = 0.02;
const MIN_MEMBERS: usize = 12;

fn run(order_seed: u64) -> Simulation {
    let mut cfg = HaccConfig::small();
    cfg.particles = 4_096;
    cfg.order = OrderPolicy::Shuffled { seed: order_seed };
    let mut sim = Simulation::new(cfg);
    sim.run(STEPS);
    sim
}

fn main() {
    println!("running two simulations: same initial conditions, different execution order…");
    let run1 = run(1);
    let run2 = run(2);
    let box_size = run1.config().box_size;

    let census1 = halo_census(run1.particles(), box_size, LINKING_LENGTH, MIN_MEMBERS);
    let census2 = halo_census(run2.particles(), box_size, LINKING_LENGTH, MIN_MEMBERS);
    println!("\nafter {STEPS} iterations:");
    println!(
        "  run 1: {} halos, largest {:?}",
        census1.count, census1.top_sizes
    );
    println!(
        "  run 2: {} halos, largest {:?}",
        census2.count, census2.top_sizes
    );
    if census1 != census2 {
        println!("  → the science result DIFFERS between runs: the halo catalogs do not");
        println!("    match (the Figure 1 scenario — same inputs, different universe).");
    } else {
        println!("  → censuses agree this time; the drift below is how close it came.");
    }

    // What the comparator would have reported from the checkpoints,
    // at a tolerance an unaware scientist might accept (1e-6) and at
    // one tight enough to expose the drift (1e-8).
    println!("\ncheckpoint comparison of the final particle positions:");
    for bound in [1e-4f64, 1e-6, 1e-8] {
        let engine = CompareEngine::new(EngineConfig {
            chunk_bytes: 1024,
            error_bound: bound,
            ..EngineConfig::default()
        });
        let fields1: Vec<f32> = run1
            .particles()
            .x
            .iter()
            .chain(&run1.particles().y)
            .chain(&run1.particles().z)
            .copied()
            .collect();
        let fields2: Vec<f32> = run2
            .particles()
            .x
            .iter()
            .chain(&run2.particles().y)
            .chain(&run2.particles().z)
            .copied()
            .collect();
        let a = CheckpointSource::in_memory(&fields1, &engine).expect("run 1 source");
        let b = CheckpointSource::in_memory(&fields2, &engine).expect("run 2 source");
        let report = engine.compare(&a, &b).expect("comparison");
        println!(
            "  ε = {bound:>5.0e}: {:>6} positions beyond the bound ({} of {} chunks flagged)",
            report.stats.diff_count, report.stats.chunks_flagged, report.stats.chunks_total
        );
    }

    println!("\nThe runs' positions already disagree at tight bounds even when the halo");
    println!("census happens to survive — intermediate-result comparison sees the hazard");
    println!("iterations before the halo count flips.");
}
