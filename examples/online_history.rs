//! The paper's future-work features, working together:
//!
//! 1. **Online comparison** — run 2 compares itself against run 1's
//!    stored history *as it executes*, reading only run 1's flagged
//!    chunks from storage and aborting early when divergence explodes.
//! 2. **Online compaction** — the multi-run checkpoint history is
//!    stored as a Merkle-delta chain. Within one chaotic run every
//!    value drifts every step, so per-run deltas barely compress (and
//!    this example shows that honestly); but *across runs* the
//!    same-iteration checkpoints are nearly identical, so storing run
//!    2 as a delta against run 1 elides most chunks — the history
//!    dedup the paper's conclusion sketches.
//!
//! ```sh
//! cargo run --release --example online_history
//! ```

use reprocmp::core::{
    CheckpointHistory, CheckpointSource, CompactionStore, CompareEngine, EngineConfig,
    OnlineComparator, OnlinePolicy, OnlineVerdict,
};
use reprocmp::hacc::{HaccConfig, OrderPolicy, Simulation};

const CAPTURE_AT: [u64; 4] = [10, 20, 30, 40];

fn engine(bound: f64) -> CompareEngine {
    CompareEngine::new(EngineConfig {
        chunk_bytes: 512,
        error_bound: bound,
        ..EngineConfig::default()
    })
}

fn positions(sim: &Simulation) -> Vec<f32> {
    let p = sim.particles();
    p.x.iter().chain(&p.y).chain(&p.z).copied().collect()
}

/// Runs the simulation, returning the captured payload per iteration.
fn capture_run(order_seed: u64) -> Vec<(u64, Vec<f32>)> {
    let mut cfg = HaccConfig::small();
    cfg.particles = 2_048;
    cfg.order = OrderPolicy::Shuffled { seed: order_seed };
    let mut sim = Simulation::new(cfg);
    let mut captures = Vec::new();
    for step in 1..=*CAPTURE_AT.last().unwrap() {
        sim.step();
        if CAPTURE_AT.contains(&step) {
            captures.push((step, positions(&sim)));
        }
    }
    captures
}

fn main() {
    println!("simulating two runs (same ICs, different schedules)…");
    let run1 = capture_run(1);
    let run2 = capture_run(2);

    // ---- Online comparison: run 2 against run 1's history ---------
    let e = engine(1e-7);
    let mut reference = CheckpointHistory::new();
    for (iter, values) in &run1 {
        reference.insert(
            0,
            *iter,
            CheckpointSource::in_memory(values, &e).expect("reference source"),
        );
    }
    println!("\nonline comparison (ε = 1e-7), run 2 observing itself against run 1:");
    let mut online = OnlineComparator::new(
        e.clone(),
        reference,
        OnlinePolicy::AbortAfter {
            max_total_diffs: 10_000,
        },
    );
    for (iter, values) in &run2 {
        match online.observe(0, *iter, values).expect("observation") {
            OnlineVerdict::Clean { bytes_read } => {
                println!("  iter {iter:>2}: clean ({bytes_read} reference bytes read)");
            }
            OnlineVerdict::Diverged {
                diff_count,
                differences,
            } => {
                let first = differences.first().map_or(0, |d| d.index);
                println!(
                    "  iter {iter:>2}: DIVERGED — {diff_count} values beyond ε (first at index {first})"
                );
            }
            OnlineVerdict::Halted => println!("  iter {iter:>2}: halted by policy"),
        }
    }
    match online.first_divergence() {
        Some((iter, _)) => println!(
            "  → first divergence at iteration {iter}, caught in-flight with only {} reference bytes read",
            online.total_bytes_read()
        ),
        None => println!("  → runs agreed within ε at every captured iteration"),
    }

    // ---- Compaction: per-run (honest) vs cross-run (the win) ------
    // Per-run: a chaotic simulation drifts everywhere, so per-run
    // deltas barely elide anything even at a loose bound.
    let e_loose = engine(1e-4);
    let mut per_run = CompactionStore::new();
    for (iter, values) in &run1 {
        per_run.append(&e_loose, *iter, values).expect("append");
    }
    println!(
        "\nper-run delta chain (ε = 1e-4): stores {:.1}% of raw history — chaotic",
        100.0 * per_run.stored_bytes() as f64 / per_run.raw_bytes() as f64
    );
    println!("  drift touches every chunk; per-run dedup is honestly useless here.");

    // Cross-run: run 2's checkpoints as deltas against run 1's at the
    // same iteration — most chunks agree within ε early on.
    let e_dedup = engine(1e-7);
    println!("\ncross-run dedup (ε = 1e-7): run 2 stored as deltas against run 1:");
    let mut total_stored = 0u64;
    let mut total_raw = 0u64;
    for ((iter, v1), (_, v2)) in run1.iter().zip(&run2) {
        let mut chain = CompactionStore::new();
        chain.append(&e_dedup, 0, v1).expect("run 1 head");
        let stats = chain.append(&e_dedup, 1, v2).expect("run 2 delta");
        println!(
            "  iter {iter:>2}: run 2 stores {:>3}/{:<3} chunks ({:>5.1}% of its raw size)",
            stats.chunks_stored,
            stats.chunks_stored + stats.chunks_elided,
            100.0 * stats.stored_fraction()
        );
        // Reconstruction is ε-exact:
        let rec = chain.reconstruct(1).expect("reconstruct run 2");
        let max_err = rec
            .iter()
            .zip(v2)
            .map(|(a, b)| (f64::from(*a) - f64::from(*b)).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err <= 1e-7, "ε-exactness violated: {max_err}");
        total_stored += stats.bytes_stored;
        total_raw += stats.bytes_raw;
    }
    println!(
        "  → run 2's history costs {:.1}% of its raw size to keep (ε-exact),",
        100.0 * total_stored as f64 / total_raw as f64
    );
    println!("    growing with divergence — storage cost is itself a reproducibility signal.");
}
