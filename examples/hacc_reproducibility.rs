//! The paper's headline scenario, end to end: two nondeterministic
//! mini-HACC runs from identical initial conditions, checkpointed
//! through the VELOC-style client at four iterations across two ranks,
//! then compared pairwise (rank × iteration) with the error-bounded
//! Merkle engine — showing *when* and *where* the runs diverged.
//!
//! ```sh
//! cargo run --release --example hacc_reproducibility
//! ```

use reprocmp::core::{CheckpointSource, CompareEngine, EngineConfig};
use reprocmp::hacc::{HaccConfig, OrderPolicy, Simulation, SlabDecomposition};
use reprocmp::veloc::{decode_checkpoint, read_region, Client, VelocConfig};

const RANKS: usize = 2;
const STEPS: u64 = 50;
const CAPTURE_AT: [u64; 4] = [10, 20, 30, 40];

fn simulate_and_capture(run_name: &str, order_seed: u64, client: &Client) {
    let mut cfg = HaccConfig::small();
    cfg.order = OrderPolicy::Shuffled { seed: order_seed };
    let box_size = cfg.box_size;
    let mut sim = Simulation::new(cfg);
    let decomp = SlabDecomposition::new(RANKS);

    for step in 1..=STEPS {
        sim.step();
        if CAPTURE_AT.contains(&step) {
            for rank in 0..RANKS {
                let regions = decomp.rank_regions(sim.particles(), box_size, rank);
                let borrowed: Vec<(&str, &[f32])> =
                    regions.iter().map(|(n, v)| (*n, v.as_slice())).collect();
                client
                    .checkpoint(&format!("{run_name}.rank{rank}"), step, &borrowed)
                    .expect("checkpoint capture");
            }
        }
    }
    client.wait_all().expect("background flushes");
}

fn main() {
    let base = std::env::temp_dir().join("reprocmp-example-hacc");
    std::fs::remove_dir_all(&base).ok();
    let client = Client::new(VelocConfig::rooted_at(&base)).expect("veloc client");

    println!("simulating two runs (same ICs, different execution order)…");
    simulate_and_capture("run1", 1001, &client);
    simulate_and_capture("run2", 2002, &client);

    let engine = CompareEngine::new(EngineConfig {
        chunk_bytes: 1024,
        error_bound: 1e-7,
        ..EngineConfig::default()
    });

    println!(
        "\n{:>5} {:>5} {:>9} {:>9} {:>10} {:>12}",
        "iter", "rank", "values", "flagged", "diffs", "max |Δ|"
    );
    for &iter in &CAPTURE_AT {
        for rank in 0..RANKS {
            let p1 = client.persistent_path(&format!("run1.rank{rank}"), iter);
            let p2 = client.persistent_path(&format!("run2.rank{rank}"), iter);
            let bytes1 = std::fs::read(&p1).expect("run1 checkpoint");
            let bytes2 = std::fs::read(&p2).expect("run2 checkpoint");
            let f1 = decode_checkpoint(&bytes1).expect("run1 header");
            let f2 = decode_checkpoint(&bytes2).expect("run2 header");

            // Diverging runs migrate particles between ranks, so slabs
            // can differ in population; compare the common prefix of
            // each field (real HACC analytics aligns by particle id —
            // see DESIGN.md).
            let mut v1 = Vec::new();
            let mut v2 = Vec::new();
            for field in reprocmp::hacc::CHECKPOINT_FIELDS {
                let a = read_region(&bytes1, &f1, field).expect("region");
                let b = read_region(&bytes2, &f2, field).expect("region");
                let common = a.len().min(b.len());
                v1.extend_from_slice(&a[..common]);
                v2.extend_from_slice(&b[..common]);
            }

            let a = CheckpointSource::in_memory(&v1, &engine).expect("source 1");
            let b = CheckpointSource::in_memory(&v2, &engine).expect("source 2");
            let report = engine.compare(&a, &b).expect("comparison");

            let max_delta = report
                .differences
                .iter()
                .map(|d| (f64::from(d.a) - f64::from(d.b)).abs())
                .fold(0.0f64, f64::max);
            println!(
                "{:>5} {:>5} {:>9} {:>9} {:>10} {:>12.3e}",
                iter,
                rank,
                report.stats.total_values,
                report.stats.chunks_flagged,
                report.stats.diff_count,
                max_delta
            );
        }
    }

    println!("\nEarly checkpoints agree (differences below the bound);");
    println!("later ones drift — the chaotic amplification of scheduling");
    println!("nondeterminism the paper's runtime is built to catch.");
    std::fs::remove_dir_all(&base).ok();
}
