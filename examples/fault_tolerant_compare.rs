//! Resilient comparison on unreliable storage: transient faults heal
//! through retries with zero report impact, and permanent faults
//! degrade gracefully — under the `Quarantine` policy the engine skips
//! unreadable chunks, reports them as `unverified` ranges, and still
//! delivers an exact verdict for everything it could read.
//!
//! ```sh
//! cargo run --example fault_tolerant_compare
//! ```

use reprocmp::core::{CheckpointSource, CompareEngine, EngineConfig, FailurePolicy};
use reprocmp::io::{FaultPlan, FaultyStorage, RetryPolicy};
use std::sync::Arc;

fn sources(e: &CompareEngine, n: usize) -> (CheckpointSource, CheckpointSource) {
    let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.01).sin()).collect();
    let mut data2 = data.clone();
    for k in (0..n).step_by(97) {
        data2[k] += 1.0;
    }
    let a = CheckpointSource::in_memory(&data, e).unwrap();
    let b = CheckpointSource::in_memory(&data2, e).unwrap();
    (a, b)
}

fn main() {
    let n = 100_000;

    // --- Scenario 1: a transient outage, healed by retries. ---------
    // The first five reads fail with a retryable error (think: a
    // congested OST briefly refusing connections). A retry budget of
    // eight attempts per op rides it out; the report is unaffected.
    let e = CompareEngine::new(EngineConfig {
        chunk_bytes: 256,
        error_bound: 1e-5,
        io: reprocmp::io::PipelineConfig {
            retry: RetryPolicy::with_attempts(8),
            ..reprocmp::io::PipelineConfig::default()
        },
        ..EngineConfig::default()
    });
    let (a, mut b) = sources(&e, n);
    let faulty = Arc::new(FaultyStorage::new(
        Arc::clone(&b.data),
        FaultPlan::FirstN { n: 5 },
    ));
    b.data = faulty.clone();
    let report = e.compare(&a, &b).expect("retries heal transient faults");
    println!("scenario 1: transient outage, retry budget 8");
    println!(
        "  injected faults: {}, retried ops: {}, gave up: {}",
        faulty.injected_faults(),
        report.io.retried,
        report.io.gave_up
    );
    println!(
        "  fully verified: {}, differences: {}",
        report.fully_verified(),
        report.stats.diff_count
    );
    assert!(report.fully_verified());
    assert_eq!(report.io.gave_up, 0);

    // --- Scenario 2: a bad sector, quarantined. ---------------------
    // Bytes 0..512 are permanently unreadable. Under the default Abort
    // policy the comparison fails; under Quarantine it reports every
    // difference outside the bad sector and lists the chunks it could
    // not vouch for.
    let e = CompareEngine::new(EngineConfig {
        chunk_bytes: 256,
        error_bound: 1e-5,
        failure_policy: FailurePolicy::Quarantine,
        ..EngineConfig::default()
    });
    let (a, mut b) = sources(&e, n);
    b.data = Arc::new(FaultyStorage::new(
        Arc::clone(&b.data),
        FaultPlan::Range { start: 0, end: 512 },
    ));
    let report = e.compare(&a, &b).expect("quarantine degrades gracefully");
    println!("\nscenario 2: permanent bad sector at bytes 0..512, Quarantine policy");
    println!(
        "  differences found: {}, unverified chunks: {} in {} range(s)",
        report.stats.diff_count,
        report.unverified_chunks(),
        report.unverified.len()
    );
    for r in &report.unverified {
        println!("  quarantined chunks {}..{}", r.first, r.first + r.count);
    }
    assert!(!report.fully_verified());
    assert!(report.stats.diff_count > 0);

    println!("\nOK: transient faults are invisible, permanent faults are exact.");
}
