# Developer entry points. `make verify` is the full pre-merge check:
# release build, the whole test suite, lints as errors, and formatting.

CARGO ?= cargo

.PHONY: verify build test lint fmt goldens gate bench-figures

verify: build test lint fmt gate

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

lint:
	$(CARGO) clippy --workspace -- -D warnings

fmt:
	$(CARGO) fmt --check

# The CI regression gate (correctness + stage-2 I/O budget vs the
# committed baseline breakdown); exits non-zero on a regression.
gate:
	$(CARGO) run --release --example ci_regression_gate

# Regenerate the golden CompareReport JSONs after an intentional
# engine change (review the diff before committing).
goldens:
	UPDATE_GOLDEN=1 $(CARGO) test --test golden_reports

# Re-run every figure/table harness; results land in bench_results/.
bench-figures:
	for bin in fig5 fig6 fig7 fig8 fig9 fig10 fig_multirun fig_dedup table1 table2 ablate; do \
		$(CARGO) run --release -p reprocmp-bench --bin $$bin || exit 1; \
	done
