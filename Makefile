# Developer entry points. `make verify` is the full pre-merge check:
# release build, the whole test suite, lints as errors, and formatting.

CARGO ?= cargo

.PHONY: verify build test lint fmt goldens gate bench-figures trace-demo analyze-demo top-demo perf-diff

verify: build test lint fmt gate

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

lint:
	$(CARGO) clippy --workspace -- -D warnings

fmt:
	$(CARGO) fmt --check

# The CI regression gate (correctness + stage-2 I/O budget vs the
# committed baseline breakdown); exits non-zero on a regression.
gate:
	$(CARGO) run --release --example ci_regression_gate

# Regenerate the golden CompareReport JSONs, the analyze divergence
# document, and the TUI frame snapshots after an intentional change
# (review the diff before committing).
goldens:
	UPDATE_GOLDEN=1 $(CARGO) test --test golden_reports
	UPDATE_GOLDEN=1 $(CARGO) test --test analyze_json
	UPDATE_GOLDEN=1 $(CARGO) test --test telemetry_plane
	UPDATE_GOLDEN=1 $(CARGO) test -p reprocmp-analyze --test snapshots

# Flight-recorder demo: two divergent mini-HACC runs, then a journaled
# comparison exporting a Chrome-trace timeline. Open trace.json in
# ui.perfetto.dev.
TRACE_DEMO_DIR ?= /tmp/reprocmp-trace-demo
trace-demo:
	$(CARGO) build --release -p reprocmp-cli
	rm -rf $(TRACE_DEMO_DIR)
	target/release/reprocmp simulate --out-dir $(TRACE_DEMO_DIR)/run1 --order-seed 1
	target/release/reprocmp simulate --out-dir $(TRACE_DEMO_DIR)/run2 --order-seed 2
	target/release/reprocmp trace compare \
		--run1 $(TRACE_DEMO_DIR)/run1/pfs/run.rank0.v000040.ckpt \
		--run2 $(TRACE_DEMO_DIR)/run2/pfs/run.rank0.v000040.ckpt \
		--error-bound 1e-7 --out trace.json
	@echo "trace.json written — open it in ui.perfetto.dev"

# Cross-run performance regression check over the committed, fully
# deterministic sim-backend goldens: the pre-flight-recorder report
# vs the current one, under a 10% budget.
perf-diff:
	$(CARGO) run --release -p reprocmp-cli --bin reprocmp -- perf-diff \
		tests/goldens/legacy_pre_flightrec.json tests/goldens/seed2_moderate.json \
		--budget 10%
	$(CARGO) run --release -p reprocmp-bench --bin fig_server -- --profile-only
	$(CARGO) run --release -p reprocmp-cli --bin reprocmp -- perf-diff \
		tests/goldens/server_compare_profile.json \
		bench_results/server_compare_profile.json --budget 10%
	$(CARGO) run --release -p reprocmp-bench --bin fig_divergence -- --profile-only
	$(CARGO) run --release -p reprocmp-cli --bin reprocmp -- perf-diff \
		tests/goldens/divergence_profile.json \
		bench_results/divergence_profile.json --budget 10%
	$(CARGO) run --release -p reprocmp-bench --bin fig_telemetry -- --profile-only
	$(CARGO) run --release -p reprocmp-cli --bin reprocmp -- perf-diff \
		tests/goldens/telemetry_profile.json \
		bench_results/telemetry_profile.json --budget 10%

# Divergence-forensics demo: two divergent mini-HACC runs, then the
# analyze verb — O(log M) bisection, front tracking, and a scripted
# replay of the terminal explorer.
ANALYZE_DEMO_DIR ?= /tmp/reprocmp-analyze-demo
analyze-demo:
	$(CARGO) build --release -p reprocmp-cli
	rm -rf $(ANALYZE_DEMO_DIR)
	target/release/reprocmp simulate --out-dir $(ANALYZE_DEMO_DIR)/run1 --order-seed 1
	target/release/reprocmp simulate --out-dir $(ANALYZE_DEMO_DIR)/run2 --order-seed 2
	target/release/reprocmp analyze \
		--run1-dir $(ANALYZE_DEMO_DIR)/run1/pfs \
		--run2-dir $(ANALYZE_DEMO_DIR)/run2/pfs \
		--error-bound 1e-9 --keys "l l t q" || test $$? -eq 1

# Live-telemetry demo: a daemon sampling at 10 Hz under a short job
# load, one Prometheus scrape, a few live `top` frames, then a clean
# drain. The persisted history survives at .../store/telemetry.jsonl —
# replay it any time with `reprocmp top --file ... --keys "t q"`.
TOP_DEMO_DIR ?= /tmp/reprocmp-top-demo
top-demo:
	$(CARGO) build --release -p reprocmp-cli
	rm -rf $(TOP_DEMO_DIR)
	mkdir -p $(TOP_DEMO_DIR)
	target/release/reprocmp simulate --out-dir $(TOP_DEMO_DIR)/sim
	target/release/reprocmp serve --store $(TOP_DEMO_DIR)/store \
		--addr 127.0.0.1:0 --addr-file $(TOP_DEMO_DIR)/addr --telemetry-ms 100 & \
	while [ ! -s $(TOP_DEMO_DIR)/addr ]; do sleep 0.1; done; \
	ADDR=$$(cat $(TOP_DEMO_DIR)/addr); \
	target/release/reprocmp submit --addr $$ADDR \
		--input $(TOP_DEMO_DIR)/sim/pfs/run.rank0.v000040.ckpt \
		--name demo --version 1 && \
	target/release/reprocmp metrics --addr $$ADDR --prom && \
	target/release/reprocmp top --addr $$ADDR --frames 3 && \
	target/release/reprocmp shutdown --addr $$ADDR
	@echo "telemetry history persisted at $(TOP_DEMO_DIR)/store/telemetry.jsonl"

# Re-run every figure/table harness; results land in bench_results/.
bench-figures:
	for bin in fig5 fig6 fig7 fig8 fig9 fig10 fig_multirun fig_dedup fig_delta fig_server fig_divergence fig_telemetry table1 table2 ablate; do \
		$(CARGO) run --release -p reprocmp-bench --bin $$bin || exit 1; \
	done
